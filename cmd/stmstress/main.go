// Command stmstress hammers the STM's consistency invariants under real
// concurrency, across every time base, and exits non-zero on any violation.
// It is the long-running companion to the unit tests: run it for minutes or
// hours to gain confidence in the engine on a particular machine.
//
//	stmstress -duration 10s
//	stmstress -duration 1m -workers 8 -timebase extsync:5000
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	var (
		duration = flag.Duration("duration", 5*time.Second, "stress duration per time base")
		workers  = flag.Int("workers", 8, "concurrent workers")
		tbFlag   = flag.String("timebase", "", "single time base to stress (default: all)")
		accounts = flag.Int("accounts", 32, "bank accounts")
		versions = flag.Int("versions", 0, "object history depth (0 = default)")
	)
	flag.Parse()

	bases := []string{"counter", "tl2counter", "mmtimer", "ideal", "extsync:2000"}
	if *tbFlag != "" {
		bases = []string{*tbFlag}
	}
	failed := false
	for _, name := range bases {
		if err := stress(name, *workers, *accounts, *versions, *duration); err != nil {
			fmt.Fprintf(os.Stderr, "stmstress: %s: %v\n", name, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// stress runs transfers, audits, and pair-writers concurrently and checks
// every invariant transactionally.
func stress(tbName string, workers, accounts, versions int, d time.Duration) error {
	tb, err := experiments.NewTimeBase(tbName, workers)
	if err != nil {
		return err
	}
	rt, err := core.NewRuntime(core.Config{TimeBase: tb, MaxVersions: versions})
	if err != nil {
		return err
	}
	const initial = 1000
	objs := make([]*core.Object, accounts)
	for i := range objs {
		objs[i] = core.NewObject(initial)
	}
	pairA, pairB := core.NewObject(0), core.NewObject(0)

	var stop atomic.Bool
	var violations atomic.Int64
	var txs atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := rt.Thread(id)
			n := 0
			for !stop.Load() {
				n++
				var err error
				switch n % 4 {
				case 0: // transfer
					from, to := (id+n)%accounts, (id*3+n*7+1)%accounts
					if from == to {
						to = (to + 1) % accounts
					}
					err = th.Run(func(tx *core.Tx) error {
						fv, err := tx.Read(objs[from])
						if err != nil {
							return err
						}
						tv, err := tx.Read(objs[to])
						if err != nil {
							return err
						}
						if err := tx.Write(objs[from], fv.(int)-1); err != nil {
							return err
						}
						return tx.Write(objs[to], tv.(int)+1)
					})
				case 1: // audit
					err = th.RunReadOnly(func(tx *core.Tx) error {
						sum := 0
						for _, o := range objs {
							v, err := tx.Read(o)
							if err != nil {
								return err
							}
							sum += v.(int)
						}
						if sum != accounts*initial {
							violations.Add(1)
							return fmt.Errorf("audit: total %d, want %d", sum, accounts*initial)
						}
						return nil
					})
				case 2: // pair writer
					err = th.Run(func(tx *core.Tx) error {
						if err := tx.Write(pairA, n); err != nil {
							return err
						}
						return tx.Write(pairB, -n)
					})
				default: // pair checker
					err = th.Run(func(tx *core.Tx) error {
						av, err := tx.Read(pairA)
						if err != nil {
							return err
						}
						bv, err := tx.Read(pairB)
						if err != nil {
							return err
						}
						if av.(int)+bv.(int) != 0 {
							violations.Add(1)
							return fmt.Errorf("torn pair: %d/%d", av, bv)
						}
						return nil
					})
				}
				if err != nil {
					errs <- err
					return
				}
				txs.Add(1)
			}
		}(id)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	close(errs)
	if err, ok := <-errs; ok {
		return err
	}
	if v := violations.Load(); v > 0 {
		return fmt.Errorf("%d invariant violations", v)
	}
	s := rt.Stats()
	fmt.Printf("%-16s ok: %d txs in %v (%.0f tx/s), aborts/attempt=%.4f, helps=%d, extensions=%d\n",
		tbName, txs.Load(), d, float64(txs.Load())/d.Seconds(), s.AbortRate(), s.Helps, s.Extensions)
	return nil
}
