// Cross-backend conformance suite: every registered engine must preserve
// the transactional invariants the paper's comparisons assume — atomicity
// of multi-cell updates (the bank's conserved total) and snapshot
// consistency of reads (a writer/checker pair that must always sum to
// zero). Run with -race; the suite is also the compatibility gate for new
// backends: register the engine and these tests cover it with no further
// wiring.
package engine_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

const confWorkers = 4

// confIters scales a per-worker iteration count down in -short mode: the CI
// cross-engine job runs the whole suite × 13 engines under the race
// detector, where full iteration counts cost minutes without adding
// coverage beyond what the long mode already proves.
func confIters(t *testing.T, n int) int {
	t.Helper()
	if testing.Short() {
		return n / 4
	}
	return n
}

func TestConformanceBankInvariant(t *testing.T) {
	for _, name := range engine.Names() {
		t.Run(name, func(t *testing.T) {
			eng := engine.MustNew(name, engine.Options{Nodes: confWorkers})
			b := &workload.Bank{Accounts: 16, Initial: 200, AuditRatio: 0.25, Seed: 42}
			if err := b.Init(eng, confWorkers); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for id := 0; id < confWorkers; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					th := eng.Thread(id)
					step := b.Step(eng, th, id)
					for i := 0; i < confIters(t, 200); i++ {
						if err := step(); err != nil {
							t.Errorf("worker %d: %v", id, err)
							return
						}
					}
				}(id)
			}
			wg.Wait()
			total, err := b.Total()
			if err != nil {
				t.Fatal(err)
			}
			if want := 16 * 200; total != want {
				t.Errorf("money not conserved: total = %d, want %d", total, want)
			}
			if s := eng.Stats(); s.Commits == 0 {
				t.Errorf("engine counted no commits: %+v", s)
			}
		})
	}
}

// TestConformanceSnapshotConsistency hammers a writer/checker pair: writers
// atomically store {n, -n}, checkers (both updating and read-only) must
// never observe a sum other than zero — a torn snapshot fails immediately.
func TestConformanceSnapshotConsistency(t *testing.T) {
	for _, name := range engine.Names() {
		t.Run(name, func(t *testing.T) {
			eng := engine.MustNew(name, engine.Options{Nodes: confWorkers})
			a, b := eng.NewCell(0), eng.NewCell(0)
			var violations atomic.Int64
			var wg sync.WaitGroup
			for id := 0; id < confWorkers; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					th := eng.Thread(id)
					for i := 1; i <= confIters(t, 300); i++ {
						var err error
						switch {
						case id%2 == 0:
							n := id*1000 + i
							err = th.Run(func(tx engine.Txn) error {
								if err := tx.Write(a, n); err != nil {
									return err
								}
								return tx.Write(b, -n)
							})
						case i%2 == 0:
							err = th.RunReadOnly(func(tx engine.Txn) error {
								return checkPair(tx, a, b, &violations)
							})
						default:
							err = th.Run(func(tx engine.Txn) error {
								return checkPair(tx, a, b, &violations)
							})
						}
						if err != nil {
							t.Errorf("worker %d: %v", id, err)
							return
						}
					}
				}(id)
			}
			wg.Wait()
			if v := violations.Load(); v > 0 {
				t.Errorf("%d torn snapshots observed", v)
			}
		})
	}
}

func checkPair(tx engine.Txn, a, b engine.Cell, violations *atomic.Int64) error {
	av, err := engine.Get[int](tx, a)
	if err != nil {
		return err
	}
	bv, err := engine.Get[int](tx, b)
	if err != nil {
		return err
	}
	if av+bv != 0 {
		violations.Add(1)
		return fmt.Errorf("torn pair: %d/%d", av, bv)
	}
	return nil
}

// TestConformanceIntSet runs the linked-list set concurrently on every
// backend and checks the surviving structure — dynamic cell allocation
// inside transactions (node inserts) must compose with each engine's
// retry machinery.
func TestConformanceIntSet(t *testing.T) {
	for _, name := range engine.Names() {
		t.Run(name, func(t *testing.T) {
			eng := engine.MustNew(name, engine.Options{Nodes: confWorkers})
			s := &workload.IntSet{KeyRange: 32, UpdateRatio: 0.6, Seed: 17}
			if err := s.Init(eng, confWorkers); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for id := 0; id < confWorkers; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					th := eng.Thread(id)
					step := s.Step(eng, th, id)
					for i := 0; i < confIters(t, 150); i++ {
						if err := step(); err != nil {
							t.Errorf("worker %d: %v", id, err)
							return
						}
					}
				}(id)
			}
			wg.Wait()
			keys, err := s.Snapshot(eng.Thread(confWorkers))
			if err != nil {
				t.Fatal(err)
			}
			seen := map[int]bool{}
			last := -1
			for _, k := range keys {
				if k <= last {
					t.Errorf("list out of order: %v", keys)
					break
				}
				last = k
				if seen[k] {
					t.Errorf("duplicate key %d", k)
				}
				seen[k] = true
			}
		})
	}
}

// TestConformanceQueues runs both bounded-FIFO variants — the plain
// two-cursor Queue and the per-slot-cursor SlotQueue — concurrently on
// every backend and checks element conservation: pushes that reported ok
// minus pops that reported ok must equal the surviving queue length, and
// the length must fit the capacity. The queue transactions mix two hot
// cursor cells (or many cooler ones) with mostly cold slots, a shape the
// other conformance workloads do not exercise.
func TestConformanceQueues(t *testing.T) {
	type (
		pushFn   = func(th engine.Thread, v, hint int) (bool, error)
		popFn    = func(th engine.Thread, hint int) (int, bool, error)
		lengthFn = func(th engine.Thread) (int, error)
	)
	type queueOps struct {
		name string
		cap  int // total capacity, derived from the workload parameters
		init func(eng engine.Engine) (pushFn, popFn, lengthFn, error)
	}
	const capacity, groups, perGroup = 8, 4, 2
	variants := []queueOps{
		{
			name: "queue", cap: capacity,
			init: func(eng engine.Engine) (pushFn, popFn, lengthFn, error) {
				q := &workload.Queue{Capacity: capacity, Seed: 7}
				err := q.Init(eng, confWorkers)
				return func(th engine.Thread, v, _ int) (bool, error) { return q.Push(th, v) },
					func(th engine.Thread, _ int) (int, bool, error) { return q.Pop(th) },
					q.Len, err
			},
		},
		{
			name: "slotqueue", cap: groups * perGroup,
			init: func(eng engine.Engine) (pushFn, popFn, lengthFn, error) {
				q := &workload.SlotQueue{Groups: groups, SlotsPerGroup: perGroup, Seed: 7}
				err := q.Init(eng, confWorkers)
				return q.Push, q.Pop, q.Len, err
			},
		},
	}
	for _, variant := range variants {
		for _, name := range engine.Names() {
			t.Run(variant.name+"/"+name, func(t *testing.T) {
				eng := engine.MustNew(name, engine.Options{Nodes: confWorkers})
				push, pop, length, err := variant.init(eng)
				if err != nil {
					t.Fatal(err)
				}
				var pushed, popped atomic.Int64
				var wg sync.WaitGroup
				for id := 0; id < confWorkers; id++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						th := eng.Thread(id)
						for i := 0; i < confIters(t, 200); i++ {
							if id%2 == 0 {
								ok, err := push(th, id*1000+i, id+i)
								if err != nil {
									t.Errorf("worker %d push: %v", id, err)
									return
								}
								if ok {
									pushed.Add(1)
								}
							} else {
								_, ok, err := pop(th, id+i)
								if err != nil {
									t.Errorf("worker %d pop: %v", id, err)
									return
								}
								if ok {
									popped.Add(1)
								}
							}
						}
					}(id)
				}
				wg.Wait()
				remaining, err := length(eng.Thread(confWorkers))
				if err != nil {
					t.Fatal(err)
				}
				if int(pushed.Load()) != int(popped.Load())+remaining {
					t.Errorf("conservation broken: pushed %d, popped %d, remaining %d",
						pushed.Load(), popped.Load(), remaining)
				}
				if remaining < 0 || remaining > variant.cap {
					t.Errorf("remaining %d outside [0,%d]", remaining, variant.cap)
				}
			})
		}
	}
}

// TestConformanceSkipList runs the multi-level skiplist concurrently on
// every backend: towers splice several cells per update (often rewriting
// the same predecessor at adjacent levels), so read-own-write handling and
// dynamic cell allocation must compose with each engine's retry machinery
// on a deeper structure than the linked list.
func TestConformanceSkipList(t *testing.T) {
	for _, name := range engine.Names() {
		t.Run(name, func(t *testing.T) {
			eng := engine.MustNew(name, engine.Options{Nodes: confWorkers})
			s := &workload.SkipList{KeyRange: 48, UpdateRatio: 0.6, Seed: 23}
			if err := s.Init(eng, confWorkers); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for id := 0; id < confWorkers; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					th := eng.Thread(id)
					step := s.Step(eng, th, id)
					for i := 0; i < confIters(t, 150); i++ {
						if err := step(); err != nil {
							t.Errorf("worker %d: %v", id, err)
							return
						}
					}
				}(id)
			}
			wg.Wait()
			keys, err := s.Snapshot(eng.Thread(confWorkers))
			if err != nil {
				t.Fatal(err)
			}
			last := -1
			for _, k := range keys {
				if k <= last {
					t.Errorf("skiplist bottom level out of order: %v", keys)
					break
				}
				last = k
			}
		})
	}
}

// mixedPayload is the escape-hatch payload of the mixed-type conformance
// test: a struct, so it can never ride the numeric lane.
type mixedPayload struct{ n int }

// TestConformanceMixedTypeCell exercises one cell that alternates between
// the unboxed int lane and boxed payloads on every backend. The
// single-threaded phase checks the documented lane semantics (escape-hatch
// values round-trip exactly; lane values read back as int; a typed Get[int]
// on a boxed cell falls back and fails cleanly instead of serving a stale
// lane word). The concurrent phase hammers a writer that atomically stores
// {n or mixedPayload{n}} and {−n}: a reader that ever decodes a stale lane
// value against a current boxed one (or vice versa) breaks the zero-sum
// invariant immediately.
func TestConformanceMixedTypeCell(t *testing.T) {
	const bigBase = 1 << 40 // far outside the runtime's small-int cache
	for _, name := range engine.Names() {
		t.Run(name, func(t *testing.T) {
			eng := engine.MustNew(name, engine.Options{Nodes: confWorkers})
			th := eng.Thread(0)

			c := eng.NewCell("seed")
			readRaw := func() any {
				var v any
				if err := th.RunReadOnly(func(tx engine.Txn) error {
					var err error
					v, err = tx.Read(c)
					return err
				}); err != nil {
					t.Fatal(err)
				}
				return v
			}
			// Boxed seed: exact round trip, and Get[int] must error (the
			// fallback path), not serve a leftover lane word.
			if got := readRaw(); got != "seed" {
				t.Fatalf("boxed seed read back as %v", got)
			}
			if err := th.RunReadOnly(func(tx engine.Txn) error {
				_, err := engine.Get[int](tx, c)
				return err
			}); err == nil {
				t.Fatal("Get[int] on a string cell must error")
			}
			// Int lane: typed round trip, canonical dynamic type int.
			if err := th.Run(func(tx engine.Txn) error {
				return engine.Set(tx, c, bigBase+1)
			}); err != nil {
				t.Fatal(err)
			}
			if got := readRaw(); got != int(bigBase+1) {
				t.Fatalf("lane value read back as %v (%T)", got, got)
			}
			// Back to a boxed struct: Get[int] must not alias the stale
			// lane word bigBase+1.
			if err := th.Run(func(tx engine.Txn) error {
				return tx.Write(c, mixedPayload{n: 7})
			}); err != nil {
				t.Fatal(err)
			}
			if got := readRaw(); got != (mixedPayload{n: 7}) {
				t.Fatalf("struct read back as %v (%T)", got, got)
			}
			if err := th.RunReadOnly(func(tx engine.Txn) error {
				_, err := engine.Get[int](tx, c)
				return err
			}); err == nil {
				t.Fatal("Get[int] after a boxed overwrite must error, not serve the stale lane value")
			}
			// Raw int64 writes keep their exact dynamic type; Set[int64]
			// rides the lane and canonicalizes to int (documented).
			if err := th.Run(func(tx engine.Txn) error {
				return tx.Write(c, int64(bigBase+2))
			}); err != nil {
				t.Fatal(err)
			}
			if got := readRaw(); got != int64(bigBase+2) {
				t.Fatalf("raw int64 read back as %v (%T)", got, got)
			}
			if err := th.Run(func(tx engine.Txn) error {
				return engine.Set(tx, c, int64(bigBase+3))
			}); err != nil {
				t.Fatal(err)
			}
			var got64 int64
			if err := th.RunReadOnly(func(tx engine.Txn) error {
				var err error
				got64, err = engine.Get[int64](tx, c)
				return err
			}); err != nil || got64 != bigBase+3 {
				t.Fatalf("Get[int64] through the lane = %d, %v", got64, err)
			}

			// Concurrent phase: type-toggling writer vs decoding readers.
			a, b := eng.NewCell(mixedPayload{}), eng.NewCell(0)
			var violations atomic.Int64
			var wg sync.WaitGroup
			for id := 0; id < confWorkers; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					th := eng.Thread(id)
					for i := 1; i <= confIters(t, 200); i++ {
						var err error
						if id == 0 {
							n := bigBase + i
							err = th.Run(func(tx engine.Txn) error {
								if i%2 == 0 {
									if err := engine.Set(tx, a, n); err != nil {
										return err
									}
								} else if err := tx.Write(a, mixedPayload{n: n}); err != nil {
									return err
								}
								return engine.Set(tx, b, -n)
							})
						} else {
							check := func(tx engine.Txn) error {
								v, err := tx.Read(a)
								if err != nil {
									return err
								}
								var n int
								switch x := v.(type) {
								case int:
									n = x
								case mixedPayload:
									n = x.n
								default:
									violations.Add(1)
									return fmt.Errorf("cell a holds %T", v)
								}
								m, err := engine.Get[int](tx, b)
								if err != nil {
									return err
								}
								if n+m != 0 {
									violations.Add(1)
									return fmt.Errorf("stale lane/box pair: %d vs %d", n, m)
								}
								return nil
							}
							if i%2 == 0 {
								err = th.RunReadOnly(check)
							} else {
								err = th.Run(check)
							}
						}
						if err != nil {
							t.Errorf("worker %d: %v", id, err)
							return
						}
					}
				}(id)
			}
			wg.Wait()
			if v := violations.Load(); v > 0 {
				t.Errorf("%d stale lane/box observations", v)
			}
		})
	}
}

// TestConformanceAbortTaxonomy runs a deliberately contended workload on
// every registered engine and asserts that each abort landed in exactly one
// taxonomy bucket: UnclassifiedAborts must be zero, and the attempt counter
// (AttemptCounter, which the harness's retry-latency histogram relies on)
// must tie out against commits + aborts + user aborts.
func TestConformanceAbortTaxonomy(t *testing.T) {
	for _, name := range engine.Names() {
		t.Run(name, func(t *testing.T) {
			eng := engine.MustNew(name, engine.Options{Nodes: confWorkers})
			// Two hot cells shared by every worker: plenty of conflicts.
			a, b := eng.NewCell(0), eng.NewCell(0)
			var attempts atomic.Uint64
			var wg sync.WaitGroup
			for id := 0; id < confWorkers; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					th := eng.Thread(id)
					for i := 0; i < confIters(t, 400); i++ {
						err := th.Run(func(tx engine.Txn) error {
							av, err := engine.Get[int](tx, a)
							if err != nil {
								return err
							}
							if err := tx.Write(a, av+1); err != nil {
								return err
							}
							return tx.Write(b, -(av + 1))
						})
						if err != nil {
							t.Errorf("worker %d: %v", id, err)
							return
						}
					}
					if ac, ok := th.(engine.AttemptCounter); !ok {
						t.Errorf("thread of %s does not implement engine.AttemptCounter", name)
					} else {
						attempts.Add(ac.Attempts())
					}
				}(id)
			}
			wg.Wait()
			s := eng.Stats()
			if s.Commits == 0 {
				t.Fatalf("engine counted no commits: %+v", s)
			}
			if u := s.UnclassifiedAborts(); u != 0 {
				t.Errorf("%d of %d aborts unclassified (stats %+v)", u, s.Aborts, s)
			}
			if got, want := attempts.Load(), s.Commits+s.Aborts+s.UserAborts; got != want {
				t.Errorf("AttemptCounter total = %d, want commits+aborts+userAborts = %d", got, want)
			}
		})
	}
}
