// Package contention provides contention managers for the LSA-RT engine.
// Upon a write-write conflict, the engine delegates to a configurable
// manager that decides which transaction proceeds (§2.3, following DSTM).
// The managers here are the classic policies from the DSTM/SXM literature,
// adapted to the engine's Resolve(us, enemy, attempt) calling convention.
package contention

import "repro/internal/core"

// Aggressive always aborts the enemy. Maximum progress for the acquirer,
// but it can livelock two writers ping-ponging an object under extreme
// contention (the engine's retry backoff breaks the symmetry in practice).
type Aggressive struct{}

// Name implements core.ContentionManager.
func (Aggressive) Name() string { return "Aggressive" }

// Resolve implements core.ContentionManager.
func (Aggressive) Resolve(us, enemy core.TxInfo, n int) core.Decision {
	return core.AbortEnemy
}

// Suicide always aborts the acquirer. Simple and obstruction-free for the
// enemy; the acquirer relies on its retry loop.
type Suicide struct{}

// Name implements core.ContentionManager.
func (Suicide) Name() string { return "Suicide" }

// Resolve implements core.ContentionManager.
func (Suicide) Resolve(us, enemy core.TxInfo, n int) core.Decision {
	return core.AbortSelf
}

// Polite waits politely for a bounded number of (exponentially backed-off)
// rounds, then aborts the enemy. This is the DSTM "Polite" manager; the
// engine performs the actual backoff between Resolve calls.
type Polite struct {
	// Rounds is how many times to wait before turning aggressive.
	// Zero means the default of 8.
	Rounds int
}

// Name implements core.ContentionManager.
func (p Polite) Name() string { return "Polite" }

// Resolve implements core.ContentionManager.
func (p Polite) Resolve(us, enemy core.TxInfo, n int) core.Decision {
	rounds := p.Rounds
	if rounds == 0 {
		rounds = 8
	}
	if n < rounds {
		return core.Wait
	}
	return core.AbortEnemy
}

// Karma compares invested work (objects opened, accumulated across
// retries): the transaction with less karma yields. Ties go to the
// acquirer after a patience proportional to the deficit.
type Karma struct{}

// Name implements core.ContentionManager.
func (Karma) Name() string { return "Karma" }

// Resolve implements core.ContentionManager.
func (Karma) Resolve(us, enemy core.TxInfo, n int) core.Decision {
	our := us.Ops() + us.Attempt()
	their := enemy.Ops() + enemy.Attempt()
	if our > their {
		return core.AbortEnemy
	}
	// Poorer transaction: wait, gaining patience each round; abort the
	// enemy once attempts have overcome the karma deficit.
	if n > their-our {
		return core.AbortEnemy
	}
	return core.Wait
}

// Timestamp implements "oldest wins": the transaction that started earlier
// (by snapshot start time) may abort the younger one; the younger waits
// briefly and then kills itself. This is the Greedy manager's priority rule
// and gives strong progress guarantees under contention.
type Timestamp struct{}

// Name implements core.ContentionManager.
func (Timestamp) Name() string { return "Timestamp" }

// Resolve implements core.ContentionManager.
func (Timestamp) Resolve(us, enemy core.TxInfo, n int) core.Decision {
	if enemy.Start().PossiblyLater(us.Start()) {
		// We are (possibly) older: the enemy yields.
		return core.AbortEnemy
	}
	if n < 4 {
		return core.Wait
	}
	return core.AbortSelf
}
