// Redo-record and snapshot frame encoding for the write-ahead log.
//
// Every frame on disk is length-prefixed and CRC-framed:
//
//	[u32 len][u32 crc32(payload)][payload]
//
// both fixed fields little-endian, crc over the payload bytes only. The
// payload's first byte is the record type: 'C' for a commit redo record,
// 'S' for a snapshot. A commit payload is
//
//	'C' | uvarint seq | uvarint nwrites | nwrites × (uvarint cellID, value)
//
// and a snapshot payload is
//
//	'S' | uvarint watermarkSeq | uvarint ncells | ncells × (uvarint cellID, value)
//
// Values carry a one-byte kind tag ahead of a kind-specific body; only
// WAL-serializable payloads are representable (the val numeric lane plus
// nil, bool, string, float64 and []byte, extended by registered codecs —
// see EncodableValue and RegisterCodec). The frame
// reader distinguishes three outcomes callers treat differently: a clean
// end of file, a torn frame (short read or CRC mismatch — recovery
// truncates it when it is the log's final frame), and a malformed payload
// inside a valid frame (always a hard error).
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/val"
)

const (
	recCommit   = 'C'
	recSnapshot = 'S'

	frameHeaderLen = 8
	// maxFrameLen bounds a frame header's length field; anything larger is
	// treated as a torn/corrupt frame rather than a giant allocation.
	maxFrameLen = 1 << 28
)

// Value kind tags on disk.
const (
	tagInt     = 'i' // Go int, varint body
	tagInt64   = 'I' // int64, varint body
	tagNil     = 'n' // no body
	tagFalse   = '0' // no body
	tagTrue    = '1' // no body
	tagString  = 's' // uvarint len + bytes
	tagFloat64 = 'f' // 8-byte little-endian IEEE 754 bits
	tagBytes   = 'y' // uvarint len + bytes
	tagCodec   = 'u' // uvarint len + codec name, uvarint len + codec body
)

// ErrUnsupportedPayload reports a transactional write whose payload the WAL
// cannot serialize. Durable engines reject such writes at Write time, before
// anything commits.
var ErrUnsupportedPayload = errors.New("durable: payload type not WAL-serializable")

// ErrTorn marks a frame that ends early or fails its CRC — recoverable by
// truncation when it is the final frame of the log, and the reconnect signal
// when a replication stream is cut mid-frame.
var ErrTorn = errors.New("durable: torn frame")

// EncodableValue reports whether v can be carried in a redo record: the
// numeric lane, a boxed nil, bool, string, float64 or []byte, or any type
// with a registered codec (see RegisterCodec).
func EncodableValue(v val.Value) bool {
	if v.IsNum() {
		return true
	}
	switch v.Load().(type) {
	case nil, bool, string, float64, []byte:
		return true
	}
	_, ok := codecFor(v.Load())
	return ok
}

// appendValue appends v's tagged encoding to b. It returns an error wrapping
// ErrUnsupportedPayload for payloads outside the serializable set.
func appendValue(b []byte, v val.Value) ([]byte, error) {
	if n, ok := v.AsInt64(); ok {
		if v.Kind() == val.KindInt {
			b = append(b, tagInt)
		} else {
			b = append(b, tagInt64)
		}
		return binary.AppendVarint(b, n), nil
	}
	switch x := v.Load().(type) {
	case nil:
		return append(b, tagNil), nil
	case bool:
		if x {
			return append(b, tagTrue), nil
		}
		return append(b, tagFalse), nil
	case string:
		b = append(b, tagString)
		b = binary.AppendUvarint(b, uint64(len(x)))
		return append(b, x...), nil
	case float64:
		b = append(b, tagFloat64)
		return binary.LittleEndian.AppendUint64(b, math.Float64bits(x)), nil
	case []byte:
		b = append(b, tagBytes)
		b = binary.AppendUvarint(b, uint64(len(x)))
		return append(b, x...), nil
	default:
		c, ok := codecFor(x)
		if !ok {
			return b, fmt.Errorf("%w: %T", ErrUnsupportedPayload, x)
		}
		body, err := c.enc(x)
		if err != nil {
			return b, fmt.Errorf("durable: codec %q encode: %w", c.name, err)
		}
		b = append(b, tagCodec)
		b = binary.AppendUvarint(b, uint64(len(c.name)))
		b = append(b, c.name...)
		b = binary.AppendUvarint(b, uint64(len(body)))
		return append(b, body...), nil
	}
}

// decodeValue consumes one tagged value from b, returning it and the rest.
func decodeValue(b []byte) (val.Value, []byte, error) {
	if len(b) == 0 {
		return val.Value{}, nil, errors.New("durable: truncated value")
	}
	tag, b := b[0], b[1:]
	switch tag {
	case tagInt, tagInt64:
		n, w := binary.Varint(b)
		if w <= 0 {
			return val.Value{}, nil, errors.New("durable: bad varint value")
		}
		if tag == tagInt {
			return val.OfInt(int(n)), b[w:], nil
		}
		return val.OfInt64(n), b[w:], nil
	case tagNil:
		return val.OfAny(nil), b, nil
	case tagFalse:
		return val.OfAny(false), b, nil
	case tagTrue:
		return val.OfAny(true), b, nil
	case tagString, tagBytes:
		n, w := binary.Uvarint(b)
		if w <= 0 || uint64(len(b[w:])) < n {
			return val.Value{}, nil, errors.New("durable: truncated string/bytes value")
		}
		body := b[w : w+int(n)]
		if tag == tagString {
			return val.OfAny(string(body)), b[w+int(n):], nil
		}
		cp := make([]byte, n)
		copy(cp, body)
		return val.OfAny(cp), b[int(n)+w:], nil
	case tagFloat64:
		if len(b) < 8 {
			return val.Value{}, nil, errors.New("durable: truncated float64 value")
		}
		return val.OfAny(math.Float64frombits(binary.LittleEndian.Uint64(b))), b[8:], nil
	case tagCodec:
		n, w := binary.Uvarint(b)
		if w <= 0 || uint64(len(b[w:])) < n {
			return val.Value{}, nil, errors.New("durable: truncated codec name")
		}
		name := string(b[w : w+int(n)])
		b = b[w+int(n):]
		m, w := binary.Uvarint(b)
		if w <= 0 || uint64(len(b[w:])) < m {
			return val.Value{}, nil, errors.New("durable: truncated codec body")
		}
		c, ok := codecNamed(name)
		if !ok {
			return val.Value{}, nil, fmt.Errorf("durable: log carries codec %q this process never registered", name)
		}
		x, err := c.dec(b[w : w+int(m)])
		if err != nil {
			return val.Value{}, nil, fmt.Errorf("durable: codec %q decode: %w", name, err)
		}
		return val.OfAny(x), b[w+int(m):], nil
	default:
		return val.Value{}, nil, fmt.Errorf("durable: unknown value tag %q", tag)
	}
}

// Entry is one cell write inside a commit or snapshot, in program order
// (replay applies entries in order, so later writes to the same cell win,
// exactly as they did transactionally). It is exported as the unit of the
// replication feed: internal/replica ships and replays []Entry.
type Entry struct {
	ID uint64
	V  val.Value
}

// appendCommitPayload appends the 'C' payload for (seq, writes) to b.
func appendCommitPayload(b []byte, seq uint64, writes []Entry) ([]byte, error) {
	b = append(b, recCommit)
	b = binary.AppendUvarint(b, seq)
	b = binary.AppendUvarint(b, uint64(len(writes)))
	var err error
	for _, w := range writes {
		b = binary.AppendUvarint(b, w.ID)
		if b, err = appendValue(b, w.V); err != nil {
			return b, err
		}
	}
	return b, nil
}

// DecodeCommitPayload parses a 'C' payload (type byte included).
func DecodeCommitPayload(b []byte) (seq uint64, writes []Entry, err error) {
	if len(b) == 0 || b[0] != recCommit {
		return 0, nil, errors.New("durable: not a commit record")
	}
	b = b[1:]
	seq, w := binary.Uvarint(b)
	if w <= 0 {
		return 0, nil, errors.New("durable: bad commit seq")
	}
	b = b[w:]
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return 0, nil, errors.New("durable: bad commit write count")
	}
	b = b[w:]
	writes = make([]Entry, 0, n)
	for i := uint64(0); i < n; i++ {
		id, w := binary.Uvarint(b)
		if w <= 0 {
			return 0, nil, errors.New("durable: bad commit cell id")
		}
		var v val.Value
		v, b, err = decodeValue(b[w:])
		if err != nil {
			return 0, nil, err
		}
		writes = append(writes, Entry{ID: id, V: v})
	}
	if len(b) != 0 {
		return 0, nil, errors.New("durable: trailing bytes in commit record")
	}
	return seq, writes, nil
}

// appendSnapshotPayload appends the 'S' payload for a snapshot at watermark
// seq holding entries (sorted by caller for deterministic bytes).
func appendSnapshotPayload(b []byte, seq uint64, entries []Entry) ([]byte, error) {
	b = append(b, recSnapshot)
	b = binary.AppendUvarint(b, seq)
	b = binary.AppendUvarint(b, uint64(len(entries)))
	var err error
	for _, e := range entries {
		b = binary.AppendUvarint(b, e.ID)
		if b, err = appendValue(b, e.V); err != nil {
			return b, err
		}
	}
	return b, nil
}

// DecodeSnapshotPayload parses an 'S' payload into the watermark and a
// cellID → value map.
func DecodeSnapshotPayload(b []byte) (seq uint64, values map[uint64]val.Value, err error) {
	if len(b) == 0 || b[0] != recSnapshot {
		return 0, nil, errors.New("durable: not a snapshot record")
	}
	b = b[1:]
	seq, w := binary.Uvarint(b)
	if w <= 0 {
		return 0, nil, errors.New("durable: bad snapshot watermark")
	}
	b = b[w:]
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return 0, nil, errors.New("durable: bad snapshot cell count")
	}
	b = b[w:]
	values = make(map[uint64]val.Value, n)
	for i := uint64(0); i < n; i++ {
		id, w := binary.Uvarint(b)
		if w <= 0 {
			return 0, nil, errors.New("durable: bad snapshot cell id")
		}
		var v val.Value
		v, b, err = decodeValue(b[w:])
		if err != nil {
			return 0, nil, err
		}
		values[id] = v
	}
	if len(b) != 0 {
		return 0, nil, errors.New("durable: trailing bytes in snapshot record")
	}
	return seq, values, nil
}

// frameAround prefixes payload (built at b[frameHeaderLen:]) with its length
// and CRC header in place. b must have been built by appending the payload
// after frameHeaderLen reserved bytes.
func frameAround(b []byte) []byte {
	payload := b[frameHeaderLen:]
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(payload))
	return b
}

// ReadFrame reads one frame from r. It returns io.EOF at a clean end of
// input and an error wrapping ErrTorn for a short frame or CRC mismatch.
// Recovery and the replication follower share it: the wire protocol ships
// the exact on-disk frame bytes.
func ReadFrame(r io.Reader) (payload []byte, frameLen int64, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("%w: short frame header: %v", ErrTorn, err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxFrameLen {
		return nil, 0, fmt.Errorf("%w: implausible frame length %d", ErrTorn, n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, fmt.Errorf("%w: short frame payload: %v", ErrTorn, err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(hdr[4:8]); got != want {
		return nil, 0, fmt.Errorf("%w: CRC mismatch (stored %08x, computed %08x)", ErrTorn, want, got)
	}
	return payload, frameHeaderLen + int64(n), nil
}
