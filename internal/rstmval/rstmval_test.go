package rstmval

import (
	"errors"
	"sync"
	"testing"
)

func TestReadInitial(t *testing.T) {
	s := New()
	o := NewObject(42)
	th := s.Thread(0)
	if err := th.RunReadOnly(func(tx *Tx) error {
		v, err := tx.Read(o)
		if err != nil {
			return err
		}
		if v.(int) != 42 {
			t.Errorf("read %v, want 42", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCommitRead(t *testing.T) {
	s := New()
	o := NewObject(0)
	th := s.Thread(0)
	if err := th.Run(func(tx *Tx) error {
		return tx.Write(o, 7)
	}); err != nil {
		t.Fatal(err)
	}
	if got := readInt(t, s, o); got != 7 {
		t.Errorf("value = %d, want 7", got)
	}
	if s.CommitCounter() != 1 {
		t.Errorf("commit counter = %d, want 1", s.CommitCounter())
	}
}

func TestReadOwnWrite(t *testing.T) {
	s := New()
	o := NewObject(1)
	th := s.Thread(0)
	if err := th.Run(func(tx *Tx) error {
		if err := tx.Write(o, 5); err != nil {
			return err
		}
		v, err := tx.Read(o)
		if err != nil {
			return err
		}
		if v.(int) != 5 {
			t.Errorf("read-own-write = %v, want 5", v)
		}
		return tx.Write(o, 6)
	}); err != nil {
		t.Fatal(err)
	}
	if got := readInt(t, s, o); got != 6 {
		t.Errorf("value = %d, want 6", got)
	}
}

func TestReadOnlyRejectsWrite(t *testing.T) {
	s := New()
	o := NewObject(1)
	err := s.Thread(0).RunReadOnly(func(tx *Tx) error { return tx.Write(o, 2) })
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("got %v, want ErrReadOnly", err)
	}
}

func TestUserErrorRollsBack(t *testing.T) {
	s := New()
	o := NewObject(3)
	boom := errors.New("boom")
	err := s.Thread(0).Run(func(tx *Tx) error {
		if err := tx.Write(o, 9); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	if got := readInt(t, s, o); got != 3 {
		t.Errorf("value = %d, want 3", got)
	}
}

func TestConcurrentIncrements(t *testing.T) {
	s := New()
	o := NewObject(0)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := s.Thread(id)
			for i := 0; i < per; i++ {
				if err := th.Run(func(tx *Tx) error {
					v, err := tx.Read(o)
					if err != nil {
						return err
					}
					return tx.Write(o, v.(int)+1)
				}); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := readInt(t, s, o); got != workers*per {
		t.Errorf("counter = %d, want %d (lost updates)", got, workers*per)
	}
}

func TestSnapshotConsistencyPair(t *testing.T) {
	s := New()
	a, b := NewObject(0), NewObject(0)
	stop := make(chan struct{})
	var writer, readers sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		th := s.Thread(0)
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := th.Run(func(tx *Tx) error {
				if err := tx.Write(a, i); err != nil {
					return err
				}
				return tx.Write(b, -i)
			}); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(id int) {
			defer readers.Done()
			th := s.Thread(id + 1)
			for i := 0; i < 300; i++ {
				if err := th.RunReadOnly(func(tx *Tx) error {
					av, err := tx.Read(a)
					if err != nil {
						return err
					}
					bv, err := tx.Read(b)
					if err != nil {
						return err
					}
					if av.(int)+bv.(int) != 0 {
						t.Errorf("torn read: %d/%d", av, bv)
					}
					return nil
				}); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}(r)
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}

func TestBankConservation(t *testing.T) {
	s := New()
	const n, initial = 8, 100
	objs := make([]*Object, n)
	for i := range objs {
		objs[i] = NewObject(initial)
	}
	const workers, per = 4, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := s.Thread(id)
			for i := 0; i < per; i++ {
				from, to := (id+i)%n, (id+i+1)%n
				if err := th.Run(func(tx *Tx) error {
					fv, err := tx.Read(objs[from])
					if err != nil {
						return err
					}
					tv, err := tx.Read(objs[to])
					if err != nil {
						return err
					}
					if err := tx.Write(objs[from], fv.(int)-1); err != nil {
						return err
					}
					return tx.Write(objs[to], tv.(int)+1)
				}); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	sum := 0
	if err := s.Thread(99).RunReadOnly(func(tx *Tx) error {
		sum = 0
		for _, o := range objs {
			v, err := tx.Read(o)
			if err != nil {
				return err
			}
			sum += v.(int)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != n*initial {
		t.Errorf("total = %d, want %d", sum, n*initial)
	}
}

func readInt(t *testing.T, s *STM, o *Object) int {
	t.Helper()
	var out int
	if err := s.Thread(99).RunReadOnly(func(tx *Tx) error {
		v, err := tx.Read(o)
		if err != nil {
			return err
		}
		out = v.(int)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}
