package timebase

import (
	"fmt"

	"repro/internal/hwclock"
)

// NodeClock is a multi-register clock source: anything that can be read
// per-node. *hwclock.Device implements it; so does a software-corrected
// view of a device (see internal/clocksync).
type NodeClock interface {
	// NodeRead reads node's clock register, in ticks. Must be strictly
	// monotonic per node.
	NodeRead(node int) int64
	// Nodes is the number of registers.
	Nodes() int
}

// ExtSyncClock is the time base of §3.2: externally synchronized real-time
// clocks. Each thread reads its node's clock register, which deviates from
// real time by at most a known bound dev: |ECp(t) − t| ≤ dev. Timestamps
// carry (value, clock ID, deviation); the comparison operators mask the
// uncertainty, which virtually shrinks version validity ranges by dev on
// each side and opens gaps of 2·dev between consecutive versions.
//
// Because dev > 0 masks the "valid exactly at commit time" case, getNewTS
// does not need to wait for a tick (Algorithm 5: "the loop is not necessary
// when dev > 0") — it is simply getTime.
type ExtSyncClock struct {
	src      NodeClock
	devBound int64
}

// NewExtSyncClock builds the time base on a simulated device. devBound is
// the advertised maximum deviation in ticks; it must cover the device's
// actual worst-case error (offset + jitter + read granularity), otherwise
// the ⪰ masking would be unsound and the STM could observe inconsistent
// snapshots.
func NewExtSyncClock(dev *hwclock.Device, devBound int64) (*ExtSyncClock, error) {
	if need := dev.Config().MaxErrorTicks(); devBound < need {
		return nil, fmt.Errorf("timebase: deviation bound %d ticks below device worst case %d", devBound, need)
	}
	return NewExtSyncClockFrom(dev, devBound)
}

// NewExtSyncClockFrom builds the time base on an arbitrary node-clock
// source. The caller asserts that devBound covers the source's true
// worst-case deviation from real time — e.g. the error bound produced by a
// software clock-synchronization pass.
func NewExtSyncClockFrom(src NodeClock, devBound int64) (*ExtSyncClock, error) {
	if devBound <= 0 {
		return nil, fmt.Errorf("timebase: deviation bound must be positive, got %d", devBound)
	}
	if src.Nodes() <= 0 {
		return nil, fmt.Errorf("timebase: node clock source has no nodes")
	}
	return &ExtSyncClock{src: src, devBound: devBound}, nil
}

// Clock implements TimeBase. The clock ID of issued timestamps is 1+node so
// it never collides with CIDExact; timestamps from the same node compare
// without deviation (Algorithm 5 line 12).
func (ec *ExtSyncClock) Clock(id int) Clock {
	node := id % ec.src.Nodes()
	return &extClock{src: ec.src, node: node, cid: int32(1 + node), bound: ec.devBound}
}

// Name implements TimeBase.
func (ec *ExtSyncClock) Name() string { return fmt.Sprintf("ExtSync(dev=%d)", ec.devBound) }

// Deviation returns the advertised deviation bound in ticks.
func (ec *ExtSyncClock) Deviation() int64 { return ec.devBound }

type extClock struct {
	src   NodeClock
	node  int
	cid   int32
	bound int64
}

// GetTime reads the local, imprecisely synchronized register and stamps the
// value with the clock ID and deviation bound (Algorithm 5 lines 1–5).
func (c *extClock) GetTime() Timestamp {
	return Timestamp{TS: c.src.NodeRead(c.node), CID: c.cid, Dev: c.bound}
}

// GetNewTS is GetTime: with dev > 0 the uncertainty masking already
// guarantees versions are never valid exactly at their commit time
// (Algorithm 5 lines 6–9).
func (c *extClock) GetNewTS() Timestamp {
	return c.GetTime()
}
