// Command clockcheck runs the standalone Figure 1 experiment: measure the
// synchronization error of a (simulated) multi-node hardware clock by
// comparing node clocks over shared memory, in rounds, and print the
// per-round series the paper plots — max |offset|, max error, and their
// sum.
//
//	clockcheck -nodes 16 -rounds 100
//	clockcheck -offset 50 -jitter 10      # deliberately imperfect device
//	clockcheck -csv > fig1.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/clocksync"
	"repro/internal/hwclock"
	"repro/internal/stats"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 16, "number of CPUs / clock registers")
		rounds   = flag.Int("rounds", 100, "comparison rounds")
		interval = flag.Duration("interval", 0, "pause between rounds (paper: 100ms over 4h)")
		tickHz   = flag.Int64("tick-hz", 20_000_000, "device tick frequency (MMTimer: 20 MHz)")
		latency  = flag.Int64("latency", 7, "device read latency in ticks (MMTimer: 7-8)")
		offset   = flag.Int64("offset", 0, "max injected per-node offset, ticks (0 = synchronized)")
		jitter   = flag.Int64("jitter", 0, "per-read jitter bound, ticks")
		seed     = flag.Int64("seed", 1, "offset/jitter seed")
		csv      = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()

	dev := hwclock.New(hwclock.Config{
		TickHz:           *tickHz,
		ReadLatencyTicks: *latency,
		Nodes:            *nodes,
		MaxOffsetTicks:   *offset,
		JitterTicks:      *jitter,
		Seed:             *seed,
	})
	res, err := clocksync.Measure(clocksync.Config{
		Device:   dev,
		Rounds:   *rounds,
		Interval: *interval,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "clockcheck:", err)
		os.Exit(1)
	}

	tbl := stats.NewTable("round", "max|offset|", "max error", "max err+|off|")
	for _, rr := range res.Rounds {
		tbl.AddRowf(rr.Round, rr.MaxAbsOffset, rr.MaxError, rr.MaxErrorPlusOffset)
	}
	if *csv {
		fmt.Print(tbl.CSV())
	} else {
		fmt.Print(tbl.String())
	}
	fmt.Fprintf(os.Stderr, "\nrun max: |offset|=%d ticks, error=%d ticks (device worst case %d)\n",
		res.MaxAbsOffset(), res.MaxError(), dev.Config().MaxErrorTicks())
	if *offset == 0 && res.MaxAbsOffset() > res.MaxError() {
		fmt.Fprintln(os.Stderr, "WARNING: offsets exceed errors on a synchronized device")
		os.Exit(2)
	}
}
