package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Options parameterize backend construction. Every field has a usable
// default; backends ignore fields that do not apply to them.
type Options struct {
	// Nodes sizes per-node time bases (one clock register per worker node).
	// Default 8. Thread ids are taken modulo Nodes, so a smaller value than
	// the worker count only shares clock registers, it never fails.
	Nodes int
	// MaxVersions is the LSA core's per-object history depth (0 = engine
	// default). 1 yields a single-version STM.
	MaxVersions int
	// Deviation is the advertised clock deviation bound in ticks for
	// "lsa/extsync" (1 GHz device, so ticks are nanoseconds). Default 2000.
	Deviation int64
	// ShardWindow is the epoch window (in ticks) a shard of the sharded
	// counter time base may run ahead of the shared epoch base, for the
	// "*/sharded" backends. 0 selects timebase.DefaultShardWindow. Larger
	// windows write the shared epoch line less often but widen the masked
	// uncertainty gap (more aborts on freshly written hot objects).
	ShardWindow int64
	// Words is the transactional memory size of the word-based backend.
	// Default 1<<20. Dynamic cell allocation (e.g. linked-list inserts)
	// consumes words permanently, so size generously for long runs.
	Words int
	// ContentionManager selects the LSA conflict arbitration policy by name
	// ("aggressive", "suicide", "polite", "karma", "timestamp"; "" = engine
	// default).
	ContentionManager string
	// Stripes is the sequence-lock stripe count for "norec/adaptive": a
	// power of two in [1, 64]. 0 selects the engine default (64).
	Stripes int
	// EscalateStripes is "norec/adaptive"'s touched-stripe threshold: an
	// attempt about to span more stripes than this escalates to the global
	// protocol. 0 selects the engine default (8).
	EscalateStripes int
	// EscalateAborts is how many striped attempts of one "norec/adaptive"
	// transaction may abort before attempts start escalated. 0 selects the
	// engine default (3).
	EscalateAborts int
}

func (o Options) withDefaults() Options {
	if o.Nodes <= 0 {
		o.Nodes = 8
	}
	if o.Deviation <= 0 {
		o.Deviation = 2000
	}
	if o.Words <= 0 {
		o.Words = 1 << 20
	}
	return o
}

// Factory builds an engine instance from options.
type Factory func(Options) (Engine, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a backend under name. It panics on duplicates — backends
// register from init functions, so a collision is a programming error.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("engine: duplicate backend %q", name))
	}
	registry[name] = f
}

// Names returns the registered backend names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// New builds the named backend.
func New(name string, opt Options) (Engine, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown backend %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return f(opt.withDefaults())
}

// MustNew is New for static configurations; it panics on error.
func MustNew(name string, opt Options) Engine {
	e, err := New(name, opt)
	if err != nil {
		panic(err)
	}
	return e
}
