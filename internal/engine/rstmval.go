package engine

import (
	"fmt"

	"repro/internal/rstmval"
)

// The "rstmval" backend: the validating STM with the RSTM commit-counter
// heuristic — consistency by read-set revalidation, gated by a global
// counter of attempted commits.
func init() {
	Register("rstmval", func(o Options) (Engine, error) {
		return &rstmEngine{stm: rstmval.New()}, nil
	})
}

type rstmEngine struct {
	stm *rstmval.STM
	counterSet
}

func (e *rstmEngine) Name() string { return "rstmval" }

func (e *rstmEngine) NewCell(initial any) Cell { return rstmval.NewObject(initial) }

func (e *rstmEngine) Thread(id int) Thread {
	return &rstmThread{id: id, th: e.stm.Thread(id), counters: e.newCounters()}
}

type rstmThread struct {
	id       int
	th       *rstmval.Thread
	counters *txnCounters
}

func (t *rstmThread) ID() int { return t.id }

func (t *rstmThread) Run(fn func(Txn) error) error {
	return runCounted(t.counters, t.th.Run, wrapRSTM, fn)
}

func (t *rstmThread) RunReadOnly(fn func(Txn) error) error {
	return runCounted(t.counters, t.th.RunReadOnly, wrapRSTM, fn)
}

func wrapRSTM(tx *rstmval.Tx) Txn { return rstmTxn{tx} }

type rstmTxn struct {
	tx *rstmval.Tx
}

func (t rstmTxn) Read(c Cell) (any, error)  { return t.tx.Read(rstmCell(c)) }
func (t rstmTxn) Write(c Cell, v any) error { return t.tx.Write(rstmCell(c), v) }

func rstmCell(c Cell) *rstmval.Object {
	o, ok := c.(*rstmval.Object)
	if !ok {
		panic(fmt.Sprintf("engine: cell of type %T used with the rstmval backend", c))
	}
	return o
}
