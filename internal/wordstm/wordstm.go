// Package wordstm is a word-based variant of the time-based STM, in the
// style of TinySTM (the direct descendant of the paper's LSA line): a flat
// transactional memory of 64-bit words protected by a striped array of
// versioned locks, with lazy snapshot maintenance over the same pluggable
// time bases as the object-based engine.
//
// The paper notes (§1.1) that using time as the basis for transactional
// memory "does not impose a certain implementation in general: both
// object-based and word-based STMs ... can be used", requiring only that
// timing information is stored at each object. Here the timing information
// is the version timestamp in each stripe's lock word, and transactions
// maintain the validity range [lower, upper] exactly as LSA prescribes:
//
//   - a read whose stripe version is newer than the snapshot's upper bound
//     triggers an extension: re-read the clock, revalidate the read set,
//     and grow the snapshot (Algorithm 3, Extend);
//   - writes lock their stripe at encounter time (visible writes) and
//     buffer the new value (write-back);
//   - commit acquires a new timestamp, revalidates if time has progressed,
//     installs the write log, and releases the locks at the new version.
//
// Single version per word (word STMs keep no history), so read-only
// transactions validate like updaters. Only exact time bases (shared
// counters, perfectly synchronized clocks) are supported: a lock word has
// no room for a clock ID and deviation, which is precisely why the
// object-based engine exists for externally synchronized clocks.
package wordstm

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/abort"
	"repro/internal/timebase"
)

// ErrAborted signals that the transaction attempt failed and was retried.
var ErrAborted = errors.New("wordstm: transaction aborted")

// ErrReadOnly is returned by Store inside a read-only transaction.
var ErrReadOnly = errors.New("wordstm: store inside read-only transaction")

// ErrOutOfRange is returned for addresses outside the allocated memory.
var ErrOutOfRange = errors.New("wordstm: address out of range")

// Reason-tagged abort instances (see internal/abort): one per abort-site
// class, allocated once. All satisfy errors.Is(err, ErrAborted).
var (
	// errAbortSnapshot: a validity-range extension failed, or a stripe
	// version stayed beyond the extended upper bound.
	errAbortSnapshot = &abort.Err{Sentinel: ErrAborted, Reason: abort.Snapshot,
		Msg: "wordstm: transaction aborted: validity-range extension failed"}
	// errAbortValidation: the commit-time revalidation failed.
	errAbortValidation = &abort.Err{Sentinel: ErrAborted, Reason: abort.Validation,
		Msg: "wordstm: transaction aborted: commit-time validation failed"}
	// errAbortContention: a bounded wait on a foreign stripe lock ran out
	// (read spin or the store-time suicide policy).
	errAbortContention = &abort.Err{Sentinel: ErrAborted, Reason: abort.Contention,
		Msg: "wordstm: transaction aborted: stripe lock held by another writer"}
)

// Addr is a word address in the STM's memory.
type Addr uint32

// STM is a word-based transactional memory instance.
type STM struct {
	tb    timebase.TimeBase
	mem   []atomic.Int64
	locks []atomic.Int64 // version<<1 (even) or owner-marker (odd)
	mask  uint32
}

// lockBit marks a stripe as owned by a committing/active writer.
const lockBit int64 = 1

// New creates a word STM with the given number of words over an exact time
// base. The number of lock stripes is the smallest power of two ≥ words/4,
// at least 64.
func New(tb timebase.TimeBase, words int) (*STM, error) {
	if words <= 0 {
		return nil, fmt.Errorf("wordstm: words must be positive, got %d", words)
	}
	probe := tb.Clock(0).GetTime()
	if probe.CID != timebase.CIDExact || probe.Dev != 0 {
		return nil, fmt.Errorf("wordstm: time base %s is not exact; word-based lock tables cannot carry clock deviations (use the object-based engine)", tb.Name())
	}
	stripes := 64
	for stripes < words/4 {
		stripes <<= 1
	}
	return &STM{
		tb:    tb,
		mem:   make([]atomic.Int64, words),
		locks: make([]atomic.Int64, stripes),
		mask:  uint32(stripes - 1),
	}, nil
}

// Words returns the size of the transactional memory.
func (s *STM) Words() int { return len(s.mem) }

// TimeBase returns the time base.
func (s *STM) TimeBase() timebase.TimeBase { return s.tb }

// stripe maps an address to its lock index.
func (s *STM) stripe(a Addr) uint32 { return (uint32(a) * 2654435761) & s.mask }

// SetInitial stores an initial value outside any transaction. Only safe
// before concurrent transactions start.
func (s *STM) SetInitial(a Addr, v int64) error {
	if int(a) >= len(s.mem) {
		return ErrOutOfRange
	}
	s.mem[a].Store(v)
	return nil
}

// Thread creates a worker context bound to the time base's clock for id.
type Thread struct {
	stm    *STM
	clock  timebase.Clock
	aborts abort.Counts
}

// AbortCounts returns this thread's aborts classified by reason.
func (t *Thread) AbortCounts() abort.Counts { return t.aborts }

// Thread creates a worker context. Not safe for concurrent use.
func (s *STM) Thread(id int) *Thread {
	return &Thread{stm: s, clock: s.tb.Clock(id)}
}

// Tx is one word-transaction attempt.
type Tx struct {
	stm      *STM
	clock    timebase.Clock
	readOnly bool
	// lower/upper are the LSA validity-range bounds, in exact ticks.
	lower, upper int64
	reads        []readEntry
	writes       []writeEntry
	windex       map[Addr]int
	locked       []uint32 // stripes this tx owns, in acquisition order
}

type readEntry struct {
	stripe  uint32
	version int64
}

type writeEntry struct {
	addr Addr
	val  int64
}

// Load reads a word into the snapshot.
func (tx *Tx) Load(a Addr) (int64, error) {
	if int(a) >= len(tx.stm.mem) {
		return 0, ErrOutOfRange
	}
	if idx, ok := tx.windex[a]; ok {
		return tx.writes[idx].val, nil
	}
	st := tx.stm.stripe(a)
	for n := 0; ; n++ {
		l1 := tx.stm.locks[st].Load()
		if l1&lockBit != 0 {
			if tx.ownsStripe(st) {
				// Locked by us for a different address in the same stripe:
				// memory still holds the committed value.
				return tx.stm.mem[a].Load(), nil
			}
			// Owned by a writer, very possibly one that is preempted
			// mid-commit (likely on few cores): yield briefly so it can
			// finish rather than throwing away the whole snapshot.
			if n > 32 {
				return 0, errAbortContention
			}
			backoff(n)
			continue
		}
		v := tx.stm.mem[a].Load()
		if tx.stm.locks[st].Load() != l1 {
			continue // raced with a commit: re-read
		}
		ver := l1 >> 1
		if ver > tx.upper {
			// The version is newer than the snapshot: try to extend
			// (Algorithm 3, Extend) and re-check.
			if !tx.extend() {
				return 0, errAbortSnapshot
			}
			if ver > tx.upper {
				return 0, errAbortSnapshot
			}
		}
		if ver > tx.lower {
			tx.lower = ver
		}
		tx.reads = append(tx.reads, readEntry{stripe: st, version: ver})
		return v, nil
	}
}

// Store buffers a write and locks the word's stripe at encounter time.
func (tx *Tx) Store(a Addr, v int64) error {
	if tx.readOnly {
		return ErrReadOnly
	}
	if int(a) >= len(tx.stm.mem) {
		return ErrOutOfRange
	}
	if idx, ok := tx.windex[a]; ok {
		tx.writes[idx].val = v
		return nil
	}
	st := tx.stm.stripe(a)
	if !tx.ownsStripe(st) {
		for n := 0; ; n++ {
			l := tx.stm.locks[st].Load()
			if l&lockBit != 0 {
				// Owned by another transaction: back off briefly, then
				// surrender (suicide policy — the word engine keeps
				// arbitration simple; the object engine has the pluggable
				// managers).
				if n > 8 {
					return errAbortContention
				}
				backoff(n)
				continue
			}
			ver := l >> 1
			if ver > tx.upper {
				if !tx.extend() || ver > tx.upper {
					return errAbortSnapshot
				}
			}
			if tx.stm.locks[st].CompareAndSwap(l, l|lockBit) {
				if ver > tx.lower {
					tx.lower = ver
				}
				tx.locked = append(tx.locked, st)
				break
			}
		}
	}
	tx.writes = append(tx.writes, writeEntry{addr: a, val: v})
	if tx.windex == nil {
		tx.windex = make(map[Addr]int, 8)
	}
	tx.windex[a] = len(tx.writes) - 1
	return nil
}

func (tx *Tx) ownsStripe(st uint32) bool {
	for _, s := range tx.locked {
		if s == st {
			return true
		}
	}
	return false
}

// extend grows the snapshot's upper bound to the current time after
// revalidating every read stripe (Algorithm 3, Extend).
func (tx *Tx) extend() bool {
	now := tx.clock.GetTime().TS
	if !tx.validate() {
		return false
	}
	tx.upper = now
	return true
}

// validate checks that every read stripe is unlocked (or ours) and
// unchanged since it was read.
func (tx *Tx) validate() bool {
	for _, r := range tx.reads {
		l := tx.stm.locks[r.stripe].Load()
		if l&lockBit != 0 {
			if !tx.ownsStripe(r.stripe) {
				return false
			}
			l &^= lockBit
		}
		if l>>1 != r.version {
			return false
		}
	}
	return true
}

// commit finishes the transaction: acquire the commit timestamp, validate
// if time progressed, install the write log, release locks.
func (tx *Tx) commit() error {
	if len(tx.writes) == 0 {
		return nil // reads were kept consistent incrementally
	}
	wv := tx.clock.GetNewTS().TS
	// One extension to the commit time is required if time progressed
	// since the snapshot (§1.1); wv = upper+1 means nothing committed in
	// between (the TL2 short cut carries over).
	if wv > tx.upper+1 {
		if !tx.validate() {
			tx.releaseLocks(0)
			return errAbortValidation
		}
	}
	for i := range tx.writes {
		w := &tx.writes[i]
		tx.stm.mem[w.addr].Store(w.val)
	}
	tx.releaseLocks(wv)
	return nil
}

// releaseLocks frees owned stripes. version 0 restores the pre-lock
// version (abort); otherwise stripes are stamped with the new version.
func (tx *Tx) releaseLocks(version int64) {
	for _, st := range tx.locked {
		l := tx.stm.locks[st].Load()
		if version == 0 {
			tx.stm.locks[st].Store(l &^ lockBit)
		} else {
			tx.stm.locks[st].Store(version << 1)
		}
	}
	tx.locked = tx.locked[:0]
}

// Run executes fn transactionally, retrying on aborts.
func (t *Thread) Run(fn func(*Tx) error) error { return t.run(false, fn) }

// RunReadOnly executes fn as a read-only transaction.
func (t *Thread) RunReadOnly(fn func(*Tx) error) error { return t.run(true, fn) }

func (t *Thread) run(readOnly bool, fn func(*Tx) error) error {
	for attempt := 0; ; attempt++ {
		tx := &Tx{
			stm:      t.stm,
			clock:    t.clock,
			readOnly: readOnly,
		}
		start := t.clock.GetTime().TS
		tx.lower, tx.upper = start, start
		err := fn(tx)
		if err == nil {
			err = tx.commit()
		} else {
			tx.releaseLocks(0)
		}
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrAborted) {
			return err
		}
		t.aborts.Observe(err)
		if attempt > 2 {
			backoff(attempt)
		}
	}
}

func backoff(n int) {
	if n < 4 {
		runtime.Gosched()
		return
	}
	shift := n
	if shift > 12 {
		shift = 12
	}
	time.Sleep(time.Microsecond << uint(shift-4))
}
