package timebase

import "sync/atomic"

// SharedCounter is the classic LSA/TL2 time base: one integer shared by all
// threads, read at transaction start and incremented by every committing
// update transaction. It is exact and trivially linearizable, but the
// fetch-and-add on commit makes the counter's cache line a coherence hotspot:
// every commit invalidates the line in every other core's cache, so the cost
// of GetTime and GetNewTS grows with the commit rate of the whole system
// (§1.2, §4.2).
type SharedCounter struct {
	// pad the hot word to a cache line on both sides so false sharing with
	// neighbouring allocations does not pollute the measurement: we want to
	// measure contention on the counter itself, nothing else.
	_ [64]byte
	c atomic.Int64
	_ [64]byte
}

// NewSharedCounter returns a shared-counter time base starting at 1 (so that
// the zero Timestamp remains the "unset" sentinel).
func NewSharedCounter() *SharedCounter {
	sc := &SharedCounter{}
	sc.c.Store(1)
	return sc
}

// Clock implements TimeBase. All handles alias the same shared word.
func (sc *SharedCounter) Clock(id int) Clock { return counterClock{sc} }

// Name implements TimeBase.
func (sc *SharedCounter) Name() string { return "SharedCounter" }

// Now exposes the current counter value for tests.
func (sc *SharedCounter) Now() int64 { return sc.c.Load() }

type counterClock struct{ sc *SharedCounter }

// GetTime reads the shared counter. The load itself is cheap but misses in
// the local cache whenever any other thread has committed since the last
// read.
func (cc counterClock) GetTime() Timestamp {
	return Exact(cc.sc.c.Load())
}

// GetNewTS atomically increments the shared counter. The returned value is
// strictly greater than every value previously read or issued anywhere in
// the system, which trivially satisfies the §2.4 requirement.
func (cc counterClock) GetNewTS() Timestamp {
	return Exact(cc.sc.c.Add(1))
}

// TL2Counter is the shared counter with the commit-timestamp sharing
// optimization of Transactional Locking II (§1.2): a committing transaction
// tries to advance the counter with a single compare-and-swap, and if the
// C&S fails — meaning another transaction advanced it concurrently — it
// shares the freshly installed value instead of retrying. Under heavy commit
// traffic this bounds each committer to one C&S attempt. The paper reports
// the optimization "showed no advantages on our hardware" (§4.2); the
// tl2opt experiment reproduces that comparison.
type TL2Counter struct {
	_ [64]byte
	c atomic.Int64
	_ [64]byte
}

// NewTL2Counter returns a TL2-style counter time base starting at 1.
func NewTL2Counter() *TL2Counter {
	tc := &TL2Counter{}
	tc.c.Store(1)
	return tc
}

// Clock implements TimeBase. Each handle tracks the largest timestamp it has
// handed out so the per-thread strict-monotonicity contract of GetNewTS
// survives timestamp sharing.
func (tc *TL2Counter) Clock(id int) Clock { return &tl2Clock{tc: tc} }

// Name implements TimeBase.
func (tc *TL2Counter) Name() string { return "TL2Counter" }

// Now exposes the current counter value for tests.
func (tc *TL2Counter) Now() int64 { return tc.c.Load() }

type tl2Clock struct {
	tc   *TL2Counter
	last int64 // largest TS returned to this thread so far
}

func (c *tl2Clock) GetTime() Timestamp {
	v := c.tc.c.Load()
	if v > c.last {
		c.last = v
	}
	return Exact(v)
}

func (c *tl2Clock) GetNewTS() Timestamp {
	v := c.tc.c.Load()
	if c.tc.c.CompareAndSwap(v, v+1) {
		c.last = v + 1
		return Exact(v + 1)
	}
	// C&S failed: somebody else advanced the counter. Share their timestamp
	// if it is fresh enough for this thread, otherwise fall back to a real
	// increment to preserve strict per-thread monotonicity.
	shared := c.tc.c.Load()
	if shared > c.last {
		c.last = shared
		return Exact(shared)
	}
	n := c.tc.c.Add(1)
	c.last = n
	return Exact(n)
}
