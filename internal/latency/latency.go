// Package latency provides the fixed-log-bucket histogram behind the bench
// snapshot's latency percentiles. One histogram is 64 power-of-2 buckets of
// atomic counters: bucket i counts observations in [2^i, 2^(i+1)) nanoseconds
// (bucket 0 additionally absorbs 0 and 1 ns, and anything non-positive), so
// Record is a bits.Len64 plus one atomic add — zero allocations, no locks, no
// time-varying state — and histograms merge across workers by adding bucket
// arrays. The price is resolution: a quantile is only known to within its
// bucket, and every extraction reports the bucket's inclusive upper bound
// (2^(i+1)−1 ns), a deliberately conservative "at most this" figure. At ~2×
// resolution per bucket the shape of a latency distribution — and any
// regression that moves a percentile across a power of two — survives, which
// is what the snapshot trajectory needs; exact order statistics would cost
// per-sample storage on the hottest path in the repository.
package latency

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of power-of-2 buckets; 64 covers every positive
// int64 nanosecond count (≈292 years) so Record never range-checks.
const NumBuckets = 64

// Histogram is a concurrency-safe fixed-bucket latency histogram. The zero
// value is ready to use. Record/RecordN may be called from any number of
// goroutines; Load takes an atomic-per-bucket snapshot that is consistent
// enough for interval deltas (each bucket is monotone).
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
}

// bucketOf returns the bucket index for a duration: floor(log2(ns)), with
// everything below 2 ns in bucket 0.
func bucketOf(d time.Duration) int {
	ns := int64(d)
	if ns < 2 {
		return 0
	}
	return bits.Len64(uint64(ns)) - 1
}

// Record counts one observation. It performs no allocation and no locking —
// safe on the per-transaction hot path (ratcheted by TestAllocBudget).
func (h *Histogram) Record(d time.Duration) {
	h.buckets[bucketOf(d)].Add(1)
}

// RecordN counts n observations of the same duration — the per-attempt retry
// feed uses it to charge a step's mean attempt latency once per attempt.
func (h *Histogram) RecordN(d time.Duration, n uint64) {
	h.buckets[bucketOf(d)].Add(n)
}

// Merge adds o's counts into h. Both histograms may be concurrently recorded
// into; the merge is per-bucket atomic.
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
}

// Load snapshots the bucket counters into a plain value for analysis.
func (h *Histogram) Load() Buckets {
	var b Buckets
	for i := range h.buckets {
		b[i] = h.buckets[i].Load()
	}
	return b
}

// Buckets is a plain (non-atomic) bucket array — the analysis-side value the
// harness diffs, merges and summarizes outside the measured interval.
type Buckets [NumBuckets]uint64

// Sub returns b − o per bucket. Use with two Load snapshots of the same
// histogram (counters are monotone, so the delta never underflows).
func (b Buckets) Sub(o Buckets) Buckets {
	var out Buckets
	for i := range b {
		out[i] = b[i] - o[i]
	}
	return out
}

// Accumulate adds o into b — the cross-worker merge on plain values.
func (b *Buckets) Accumulate(o Buckets) {
	for i := range b {
		b[i] += o[i]
	}
}

// Count returns the total number of observations.
func (b Buckets) Count() uint64 {
	var n uint64
	for i := range b {
		n += b[i]
	}
	return n
}

// upperBound returns the largest nanosecond value bucket i can hold.
func upperBound(i int) int64 {
	if i >= 62 {
		return int64(^uint64(0) >> 1)
	}
	return int64(1)<<(i+1) - 1
}

// Quantile returns the inclusive upper bound of the bucket holding the q-th
// order statistic (0 < q ≤ 1), i.e. a conservative "q of observations took at
// most this long". Returns 0 when the histogram is empty.
func (b Buckets) Quantile(q float64) time.Duration {
	total := b.Count()
	if total == 0 {
		return 0
	}
	// Rank of the order statistic, 1-based: ceil(q·total), clamped to [1,total].
	rank := uint64(q * float64(total))
	if float64(rank) < q*float64(total) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen uint64
	for i := range b {
		seen += b[i]
		if seen >= rank {
			return time.Duration(upperBound(i))
		}
	}
	return time.Duration(upperBound(NumBuckets - 1))
}

// Summary condenses the buckets into the snapshot's latency block. Returns
// nil for an empty histogram (the record then omits the block entirely).
func (b Buckets) Summary() *Summary {
	count := b.Count()
	if count == 0 {
		return nil
	}
	last := 0
	for i := range b {
		if b[i] != 0 {
			last = i
		}
	}
	s := &Summary{
		Count:   count,
		Buckets: append([]uint64(nil), b[:last+1]...),
		P50:     int64(b.Quantile(0.50)),
		P99:     int64(b.Quantile(0.99)),
		P999:    int64(b.Quantile(0.999)),
	}
	return s
}

// Summary is the JSON form of a histogram: the bucket array (trailing zero
// buckets trimmed; index i counts observations in [2^i, 2^(i+1)) ns) plus the
// extracted percentiles, each the inclusive upper bound of its bucket.
type Summary struct {
	Count   uint64   `json:"count"`
	Buckets []uint64 `json:"buckets"`
	P50     int64    `json:"p50_ns"`
	P99     int64    `json:"p99_ns"`
	P999    int64    `json:"p999_ns"`
}

// buckets reconstitutes the full-width bucket array.
func (s *Summary) buckets() (Buckets, error) {
	var b Buckets
	if len(s.Buckets) > NumBuckets {
		return b, fmt.Errorf("latency: summary has %d buckets, max %d", len(s.Buckets), NumBuckets)
	}
	copy(b[:], s.Buckets)
	return b, nil
}

// Validate checks internal consistency: the bucket counts must sum to Count,
// and each percentile must equal the value re-extracted from the buckets —
// so a hand-edited or bit-rotted snapshot block fails the benchcheck gate
// rather than skewing a trend silently.
func (s *Summary) Validate() error {
	if s == nil {
		return fmt.Errorf("latency: nil summary")
	}
	b, err := s.buckets()
	if err != nil {
		return err
	}
	if got := b.Count(); got != s.Count {
		return fmt.Errorf("latency: buckets sum to %d, count says %d", got, s.Count)
	}
	if s.Count == 0 {
		return fmt.Errorf("latency: empty summary (zero observations)")
	}
	for _, q := range []struct {
		q    float64
		have int64
		name string
	}{{0.50, s.P50, "p50"}, {0.99, s.P99, "p99"}, {0.999, s.P999, "p999"}} {
		if want := int64(b.Quantile(q.q)); q.have != want {
			return fmt.Errorf("latency: %s_ns = %d, buckets say %d", q.name, q.have, want)
		}
	}
	if s.P50 > s.P99 || s.P99 > s.P999 {
		return fmt.Errorf("latency: percentiles not monotone: p50=%d p99=%d p999=%d", s.P50, s.P99, s.P999)
	}
	return nil
}

// String renders the percentiles compactly for tables and logs.
func (s *Summary) String() string {
	if s == nil {
		return "-"
	}
	return fmt.Sprintf("p50=%v p99=%v p999=%v (n=%d)",
		time.Duration(s.P50), time.Duration(s.P99), time.Duration(s.P999), s.Count)
}
