package replica

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
)

// ErrNoQuorum reports a commit that journaled locally but was not
// acknowledged by the required follower count within the ack timeout. The
// commit is durable on the primary — only the client acknowledgment is
// withheld, so callers must not count the transaction as replicated.
var ErrNoQuorum = errors.New("replica: quorum not reached")

// ErrClosed reports an operation on a closed Primary.
var ErrClosed = errors.New("replica: primary closed")

// PrimaryOptions tune the shipping side. The zero value is usable.
type PrimaryOptions struct {
	// Quorum is the follower-ack count that gates client acknowledgments
	// (sync replication). 0 is asynchronous: commits ack immediately and
	// followers trail best-effort.
	Quorum int
	// AckTimeout bounds the quorum wait per commit (default 5s).
	AckTimeout time.Duration
	// SendBuffer bounds each follower's queued frame bytes; overflowing it
	// marks the follower for drop-and-resync from a fresh snapshot instead
	// of ever blocking commits (default 4 MiB).
	SendBuffer int64
	// Heartbeat is the idle-stream heartbeat interval (default 250ms).
	Heartbeat time.Duration
	// StreamTimeout is the per-stream read and write deadline; a stream
	// silent for this long is dropped (default 4×Heartbeat).
	StreamTimeout time.Duration
}

func (o PrimaryOptions) withDefaults() PrimaryOptions {
	if o.AckTimeout <= 0 {
		o.AckTimeout = 5 * time.Second
	}
	if o.SendBuffer <= 0 {
		o.SendBuffer = 4 << 20
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 250 * time.Millisecond
	}
	if o.StreamTimeout <= 0 {
		o.StreamTimeout = 4 * o.Heartbeat
	}
	return o
}

// Stats is the primary's replication telemetry snapshot.
type Stats struct {
	// Followers is the live stream count.
	Followers int
	// AppendedSeq is the primary's WAL high-water mark.
	AppendedSeq uint64
	// MinAckedSeq is the laggiest live follower's acknowledged seq (0 with
	// no followers).
	MinAckedSeq uint64
	// LagSeqs is AppendedSeq − MinAckedSeq over live followers (0 without).
	LagSeqs uint64
	// LagBytes is the frame bytes currently queued across follower send
	// buffers.
	LagBytes int64
	// Resyncs counts slow-follower buffer drops that forced a fresh
	// snapshot down an already-open stream.
	Resyncs uint64
	// Accepts counts streams that completed a hello; Disconnects counts
	// streams that ended. accepts − disconnects = Followers.
	Accepts, Disconnects uint64
}

// Primary taps the durable engine's WAL appends and ships every commit
// frame to its registered followers. Create with NewPrimary, feed it
// connections via Serve (a listener accept loop) or HandleConn (direct, for
// in-process fault injection), and Close to detach from the engine.
type Primary struct {
	eng *durable.Engine
	opt PrimaryOptions

	mu        sync.Mutex // followers, closed, and the ack condition
	cond      *sync.Cond
	followers map[*stream]struct{}
	closed    bool

	resyncs     atomic.Uint64
	accepts     atomic.Uint64
	disconnects atomic.Uint64
}

// NewPrimary attaches a shipper to eng: the WAL tap starts feeding follower
// queues immediately, and with opt.Quorum > 0 the engine's commit gate
// starts holding client acks for follower acknowledgment.
func NewPrimary(eng *durable.Engine, opt PrimaryOptions) *Primary {
	p := &Primary{
		eng:       eng,
		opt:       opt.withDefaults(),
		followers: map[*stream]struct{}{},
	}
	p.cond = sync.NewCond(&p.mu)
	eng.TapCommits(p.tap)
	if p.opt.Quorum > 0 {
		eng.SetCommitGate(p.gate)
		// The gate re-checks its deadline only when woken; a periodic
		// broadcast bounds the staleness when no acks arrive at all.
		go p.gateTicker()
	}
	return p
}

// tap runs under the log mutex on every append: copy the frame, hand it to
// each follower queue, never block (enqueue drops-and-marks on overflow).
func (p *Primary) tap(seq uint64, fr []byte) {
	p.mu.Lock()
	if len(p.followers) == 0 || p.closed {
		p.mu.Unlock()
		return
	}
	cp := append(make([]byte, 0, len(fr)), fr...) // one read-only copy, shared
	for s := range p.followers {
		s.enqueue(seq, cp)
	}
	p.mu.Unlock()
}

// gate is the engine's commit gate in quorum mode: block the client ack
// until Quorum followers acknowledged seq, bounded by AckTimeout.
func (p *Primary) gate(seq uint64) error {
	deadline := time.Now().Add(p.opt.AckTimeout)
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		n := 0
		for s := range p.followers {
			if s.acked.Load() >= seq {
				n++
			}
		}
		if n >= p.opt.Quorum {
			return nil
		}
		if p.closed {
			return fmt.Errorf("%w: seq %d unconfirmed", ErrClosed, seq)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%w: seq %d acked by %d of %d followers within %v",
				ErrNoQuorum, seq, n, p.opt.Quorum, p.opt.AckTimeout)
		}
		p.cond.Wait()
	}
}

func (p *Primary) gateTicker() {
	t := time.NewTicker(p.opt.AckTimeout / 4)
	defer t.Stop()
	for range t.C {
		p.mu.Lock()
		closed := p.closed
		p.cond.Broadcast()
		p.mu.Unlock()
		if closed {
			return
		}
	}
}

// Serve accepts follower connections until the listener closes.
func (p *Primary) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go p.HandleConn(conn)
	}
}

// HandleConn runs one follower stream to completion: hello, catch-up
// (snapshot when the follower is behind), then the live tail. It returns
// when the stream dies; the follower reconnects on its own schedule.
func (p *Primary) HandleConn(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(p.opt.StreamTimeout))
	payload, _, err := durable.ReadFrame(conn)
	if err != nil {
		return
	}
	lastApplied, err := parseHello(payload)
	if err != nil {
		return
	}

	s := &stream{p: p, conn: conn}
	s.qcond = sync.NewCond(&s.qmu)
	s.acked.Store(lastApplied)

	// Register before deciding catch-up: from this point the tap queues
	// every new commit, so a snapshot captured later plus the queue (minus
	// frames its watermark covers) misses nothing.
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.followers[s] = struct{}{}
	p.mu.Unlock()
	p.accepts.Add(1)

	appended := p.eng.AppendedSeq()
	switch {
	case lastApplied == appended:
		// Tail-only reconnect: the follower is exactly current.
	case lastApplied < appended:
		s.markResync(false)
	default:
		// A follower ahead of its primary is divergent history (it was
		// promoted, or speaks for a different log); refuse the stream
		// rather than feed it records it cannot apply.
		p.drop(s)
		return
	}

	done := make(chan struct{})
	go func() {
		s.reader()
		close(done)
	}()
	go s.heartbeater(done)
	s.writer()
	<-done
	p.drop(s)
}

// drop removes a stream and wakes the gate (a dead follower can no longer
// ack anything).
func (p *Primary) drop(s *stream) {
	s.qmu.Lock()
	wasDead := s.dead
	s.dead = true
	s.queue, s.qbytes = nil, 0
	s.qcond.Broadcast()
	s.qmu.Unlock()
	s.conn.Close()
	p.mu.Lock()
	if _, live := p.followers[s]; live {
		delete(p.followers, s)
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	if !wasDead {
		p.disconnects.Add(1)
	}
}

// Stats snapshots the primary's replication telemetry.
func (p *Primary) Stats() Stats {
	st := Stats{
		AppendedSeq: p.eng.AppendedSeq(),
		Resyncs:     p.resyncs.Load(),
		Accepts:     p.accepts.Load(),
		Disconnects: p.disconnects.Load(),
	}
	p.mu.Lock()
	st.Followers = len(p.followers)
	for s := range p.followers {
		if a := s.acked.Load(); st.MinAckedSeq == 0 || a < st.MinAckedSeq {
			st.MinAckedSeq = a
		}
		s.qmu.Lock()
		st.LagBytes += s.qbytes
		s.qmu.Unlock()
	}
	p.mu.Unlock()
	if st.Followers > 0 && st.AppendedSeq > st.MinAckedSeq {
		st.LagSeqs = st.AppendedSeq - st.MinAckedSeq
	}
	return st
}

// Close detaches the shipper from the engine (tap and gate cleared) and
// drops every stream. The engine itself keeps running unreplicated.
func (p *Primary) Close() {
	p.eng.TapCommits(nil)
	p.eng.SetCommitGate(nil)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	streams := make([]*stream, 0, len(p.followers))
	for s := range p.followers {
		streams = append(streams, s)
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	for _, s := range streams {
		p.drop(s)
	}
}

// qitem is one queued commit frame with its seq (so a resync snapshot's
// watermark can drop the covered prefix).
type qitem struct {
	seq uint64
	b   []byte
}

// stream is one follower connection on the primary side: a bounded queue
// fed by the tap, a writer goroutine shipping snapshot + tail, a reader
// consuming acks, and a heartbeater keeping idle streams alive.
type stream struct {
	p    *Primary
	conn net.Conn

	qmu      sync.Mutex
	qcond    *sync.Cond
	queue    []qitem
	qbytes   int64
	needSnap bool
	dead     bool

	wmu sync.Mutex // serializes conn writes (writer vs heartbeater)

	acked atomic.Uint64
}

// enqueue runs inside the tap (under the log mutex): append the frame, or —
// on a full buffer — drop everything and mark the stream for a fresh
// snapshot. Never blocks, so a slow follower can never stall a commit.
func (s *stream) enqueue(seq uint64, fr []byte) {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.dead {
		return
	}
	if s.qbytes+int64(len(fr)) > s.p.opt.SendBuffer {
		s.queue, s.qbytes = s.queue[:0], 0
		if !s.needSnap {
			s.needSnap = true
			s.p.resyncs.Add(1)
		}
	}
	s.queue = append(s.queue, qitem{seq: seq, b: fr})
	s.qbytes += int64(len(fr))
	s.qcond.Signal()
}

// markResync queues a snapshot send ahead of the tail.
func (s *stream) markResync(countIt bool) {
	s.qmu.Lock()
	if !s.needSnap {
		s.needSnap = true
		if countIt {
			s.p.resyncs.Add(1)
		}
	}
	s.qcond.Signal()
	s.qmu.Unlock()
}

func (s *stream) write(b []byte) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	_ = s.conn.SetWriteDeadline(time.Now().Add(s.p.opt.StreamTimeout))
	_, err := s.conn.Write(b)
	return err
}

// writer ships the stream: snapshot when marked, then queued tail frames in
// arrival order, coalescing each wakeup's batch into one conn write (the
// group-commit-aligned flush: frames of one fsync batch leave together).
func (s *stream) writer() {
	var buf []byte
	for {
		s.qmu.Lock()
		for !s.dead && !s.needSnap && len(s.queue) == 0 {
			s.qcond.Wait()
		}
		if s.dead {
			s.qmu.Unlock()
			return
		}
		if s.needSnap {
			s.needSnap = false
			s.qmu.Unlock()
			watermark, fr, err := s.p.eng.SnapshotFrame()
			if err != nil || s.write(fr) != nil {
				s.fail()
				return
			}
			// The snapshot covers every commit ≤ watermark: drop the
			// queued prefix it superseded.
			s.qmu.Lock()
			kept := s.queue[:0]
			var bytes int64
			for _, it := range s.queue {
				if it.seq > watermark {
					kept = append(kept, it)
					bytes += int64(len(it.b))
				}
			}
			s.queue, s.qbytes = kept, bytes
			s.qmu.Unlock()
			continue
		}
		batch := s.queue
		s.queue, s.qbytes = nil, 0
		s.qmu.Unlock()
		buf = buf[:0]
		for _, it := range batch {
			buf = append(buf, it.b...)
		}
		if s.write(buf) != nil {
			s.fail()
			return
		}
	}
}

// reader consumes follower acks until the stream dies.
func (s *stream) reader() {
	for {
		_ = s.conn.SetReadDeadline(time.Now().Add(s.p.opt.StreamTimeout))
		payload, _, err := durable.ReadFrame(s.conn)
		if err != nil {
			s.fail()
			return
		}
		if len(payload) == 0 || payload[0] != msgAck {
			s.fail()
			return
		}
		seq, err := parseSeqPayload(payload)
		if err != nil {
			s.fail()
			return
		}
		if seq > s.acked.Load() {
			s.acked.Store(seq)
			s.p.mu.Lock()
			s.p.cond.Broadcast()
			s.p.mu.Unlock()
		}
	}
}

// heartbeater keeps an idle stream alive (and carries the primary's
// high-water mark, which the follower's lag view can use).
func (s *stream) heartbeater(done <-chan struct{}) {
	t := time.NewTicker(s.p.opt.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			if s.write(seqFrame(msgHeartbeat, s.p.eng.AppendedSeq())) != nil {
				s.fail()
				return
			}
		}
	}
}

// fail marks the stream dead and closes the conn, unblocking its peers.
func (s *stream) fail() {
	s.qmu.Lock()
	s.dead = true
	s.qcond.Broadcast()
	s.qmu.Unlock()
	s.conn.Close()
}
