package core

// Allocation budgets for the small-transaction fast paths. These are the
// ratchet behind the -benchmem trend in the repo-root BenchmarkSmallTxAllocs:
// a regression that reintroduces per-attempt allocations (entry-slice growth,
// per-write version/locator nodes, the commit-timestamp box, per-supersession
// Timestamp boxes, payload boxing on the typed value lane) fails here
// deterministically instead of drifting in a bench snapshot.
//
// Budget accounting on the current fast path:
//
//   - read-only, ≤smallAccessSet reads: 1 — the per-attempt Tx itself, which
//     embeds the inline entry array. The Tx cannot be reused across attempts
//     (helpers may validate a frozen access set), so 1 is the floor for the
//     current design.
//   - update, 1 read-modify-write: 2 — the Tx, plus the committed-head
//     version node built when the *next* attempt settles the previous
//     commit's locator (settling is lazy, so in a steady-state loop each run
//     pays the previous run's supersession; it costs exactly one node — the
//     locator and the predecessor's fixed upper bound are embedded in it).
//   - update, 2 read-modify-writes: 3 — the Tx plus two settle nodes.
//
// Values are written far outside the runtime's small-int interface cache
// (> 2⁴⁰) through the typed lane (ReadValue/WriteInt), so these budgets
// prove the unboxed int lane end to end: zero boxing allocations per int
// write on the hottest path.

import (
	"testing"
)

// allocBudget asserts the steady-state allocations per run. It reports the
// measured value so a failure shows the regression size immediately.
func allocBudget(t *testing.T, name string, budget float64, f func()) {
	t.Helper()
	// One untimed warm round builds thread-local state (clocks, spare maps)
	// before AllocsPerRun's own warmup run.
	f()
	if got := testing.AllocsPerRun(200, f); got > budget {
		t.Errorf("%s: %.1f allocs/run, budget %.0f", name, got, budget)
	}
}

// big keeps every written value far outside the runtime's small-int cache,
// so any boxing on the path would show up as an allocation.
const big = int64(1) << 40

func TestAllocBudgetReadOnlySmall(t *testing.T) {
	rt := counterRT()
	a, b := NewObject(big+1), NewObject(big+2)
	th := rt.Thread(0)
	fn := func(tx *Tx) error {
		if _, _, err := tx.ReadInt(a); err != nil {
			return err
		}
		_, _, err := tx.ReadInt(b)
		return err
	}
	allocBudget(t, "core read-only 2 reads", 1, func() {
		if err := th.RunReadOnly(fn); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocBudgetUpdateOne(t *testing.T) {
	rt := counterRT()
	a := NewObject(big)
	th := rt.Thread(0)
	fn := func(tx *Tx) error {
		v, _, err := tx.ReadInt(a)
		if err != nil {
			return err
		}
		return tx.WriteInt(a, big+(v+1)%100)
	}
	allocBudget(t, "core 1-write update", 2, func() {
		if err := th.Run(fn); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocBudgetUpdateSmall(t *testing.T) {
	rt := counterRT()
	a, b := NewObject(big), NewObject(big)
	th := rt.Thread(0)
	bump := func(tx *Tx, o *Object) error {
		v, _, err := tx.ReadInt(o)
		if err != nil {
			return err
		}
		return tx.WriteInt(o, big+(v+1)%100)
	}
	fn := func(tx *Tx) error {
		if err := bump(tx, a); err != nil {
			return err
		}
		return bump(tx, b)
	}
	allocBudget(t, "core 2-write update", 3, func() {
		if err := th.Run(fn); err != nil {
			t.Fatal(err)
		}
	})
}
