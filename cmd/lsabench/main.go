// Command lsabench regenerates the paper's evaluation (§4) from the
// command line. Each experiment prints the same rows/series the paper
// reports:
//
//	lsabench -experiment fig1                 MMTimer synchronization errors (Figure 1)
//	lsabench -experiment fig2                 time-base overhead, real STM (Figure 2)
//	lsabench -experiment fig2sim              time-base overhead, simulated 16-CPU machine (Figure 2)
//	lsabench -experiment tl2opt               TL2 counter optimization comparison (§4.2)
//	lsabench -experiment errors               synchronization-error ablation (§4.3)
//	lsabench -experiment baselines            LSA-RT vs TL2 vs validating STM (§1.2)
//	lsabench -experiment bench                cross-engine workload matrix (every registered backend)
//	lsabench -experiment sweep                scaling curves: bench matrix at worker counts 1,2,4,...,GOMAXPROCS
//	lsabench -experiment all                  everything above except sweep (which multiplies bench by the
//	                                          number of worker counts — run it explicitly)
//
// The bench experiment iterates the engine registry: every STM backend —
// LSA under each time base, TL2 (on its counter and on the externally
// synchronized clock), the word-based engine, the validating baseline, the
// NOrec sequence-lock engine, and the coarse-global-lock reference — runs
// the same workloads through the same harness. Select backends with -engine
// (which implies -experiment bench when no experiment is named):
//
//	lsabench -engine tl2                      bank + intset on TL2 only
//	lsabench -engine lsa/mmtimer,wordstm      two backends, same scenarios
//	lsabench -experiment bench -json BENCH_engines.json
//
// With -json, bench and sweep results are also written as machine-readable
// records (one per engine × workload) so successive PRs can track the
// performance trajectory in checked-in BENCH_*.json files. Records carry the
// commit-latency distribution (p50/p99/p999 over power-of-two nanosecond
// buckets) next to throughput; sweep records additionally carry the whole
// scaling curve.
//
// Runtime diagnostics apply to any experiment: -cpuprofile/-memprofile/-trace
// write the standard Go profiles, -http serves expvar (/debug/vars, including
// the latest bench results under "bench") and pprof while the process runs.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/diag"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/stats"
	"repro/internal/workload"

	// Registers the durable/* wrappers: benchable via -engine durable/norec,
	// excluded from the default matrix (see selectedEngines).
	"repro/internal/durable"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "fig1|fig2|fig2word|fig2sim|tl2opt|errors|baselines|bench|sweep|all (default all; bench when -engine is set)")
		duration   = flag.Duration("duration", 300*time.Millisecond, "measured interval per point (real-STM experiments)")
		warmup     = flag.Duration("warmup", 0, "warmup before each measurement (default duration/5)")
		threads    = flag.String("threads", "", "comma-separated worker counts (default 1,2,4,6,8,12,16)")
		sizes      = flag.String("sizes", "", "comma-separated transaction sizes (default 10,50,100)")
		rounds     = flag.Int("rounds", 100, "clock-comparison rounds for fig1")
		simNs      = flag.Int64("sim-ns", 50_000_000, "simulated horizon per fig2sim point, ns")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		engines    = flag.String("engine", "", "comma-separated engine names for the bench experiment (default: all registered; see -list-engines)")
		listEng    = flag.Bool("list-engines", false, "print the registered engines with their capabilities and exit")
		workers    = flag.Int("workers", 4, "worker count for the bench experiment")
		jsonPath   = flag.String("json", "", "also write bench/sweep results as JSON records to this file (\"-\" = stdout)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		tracePath  = flag.String("trace", "", "write an execution trace to this file")
		httpAddr   = flag.String("http", "", "serve expvar and pprof on this address (e.g. localhost:6060)")
	)
	var opt engine.Options
	opt.BindFlags(flag.CommandLine)
	flag.Parse()

	stopDiag, err := diag.Start(diag.Flags{
		CPUProfile: *cpuProfile, MemProfile: *memProfile, Trace: *tracePath, HTTP: *httpAddr,
	})
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopDiag(); err != nil {
			fatal(err)
		}
	}()

	if *listEng {
		// The registry's introspection API replaces the ad-hoc per-engine
		// type assertions this listing used to need.
		t := stats.NewTable("engine", "int-lane", "attempts", "multi-version", "durable", "tunables", "summary")
		for _, info := range engine.Infos() {
			t.AddRowf(info.Name,
				yn(info.Capabilities.IntLane),
				yn(info.Capabilities.AttemptCounter),
				yn(info.Capabilities.MultiVersion),
				yn(info.Capabilities.Durable),
				strings.Join(info.Capabilities.Tunables, ","),
				info.Summary)
		}
		emit(t, *csv)
		return
	}

	// A bare -engine selection means "run the cross-engine bench on these".
	if *experiment == "" {
		if *engines != "" {
			*experiment = "bench"
		} else {
			*experiment = "all"
		}
	}
	// -engine and -json only affect the bench and sweep experiments; refuse
	// silently dropping them when an explicit experiment excludes them.
	if *experiment != "bench" && *experiment != "sweep" && *experiment != "all" {
		if *engines != "" {
			fatal(fmt.Errorf("-engine only applies to -experiment bench or sweep (got -experiment %s)", *experiment))
		}
		if *jsonPath != "" {
			fatal(fmt.Errorf("-json only applies to -experiment bench or sweep (got -experiment %s)", *experiment))
		}
	}

	th, err := parseInts(*threads)
	if err != nil {
		fatal(err)
	}
	sz, err := parseInts(*sizes)
	if err != nil {
		fatal(err)
	}

	run := func(name string) {
		switch name {
		case "fig1":
			res, err := experiments.Fig1(experiments.Fig1Config{Rounds: *rounds})
			if err != nil {
				fatal(err)
			}
			header("Figure 1 — MMTimer synchronization errors and offsets")
			fmt.Printf("run max: |offset|=%d ticks, error=%d ticks\n\n",
				res.Measurement.MaxAbsOffset(), res.Measurement.MaxError())
			emit(res.Table, *csv)
		case "fig2":
			res, err := experiments.Fig2(experiments.Fig2Config{
				Sizes: sz, Threads: th, Duration: *duration, Warmup: *warmup,
			})
			if err != nil {
				fatal(err)
			}
			header("Figure 2 — time-base overhead for disjoint updates (real STM on this host)")
			emit(res.Table, *csv)
		case "fig2word":
			res, err := experiments.Fig2Word(experiments.Fig2Config{
				Sizes: sz, Threads: th, Duration: *duration, Warmup: *warmup,
			})
			if err != nil {
				fatal(err)
			}
			header("Figure 2 on the word-based LSA engine (time bases are representation-agnostic, §1.1)")
			emit(res.Table, *csv)
		case "fig2sim":
			res, err := experiments.Fig2Sim(experiments.Fig2SimConfig{
				Sizes: sz, Threads: th, DurationNs: *simNs,
			})
			if err != nil {
				fatal(err)
			}
			header("Figure 2 — time-base overhead on the simulated 16-CPU ccNUMA machine")
			emit(res.Table, *csv)
		case "tl2opt":
			res, err := experiments.TL2Opt(experiments.Fig2Config{
				Sizes: sz, Threads: th, Duration: *duration, Warmup: *warmup,
			})
			if err != nil {
				fatal(err)
			}
			header("§4.2 — shared counter vs TL2 commit-timestamp sharing")
			emit(res.Table, *csv)
		case "errors":
			res, err := experiments.SyncErrors(experiments.SyncErrorsConfig{
				Duration: *duration, Warmup: *warmup,
			})
			if err != nil {
				fatal(err)
			}
			header("§4.3 — synchronization error vs abort behaviour")
			emit(res.Table, *csv)
		case "baselines":
			res, err := experiments.Baselines(experiments.BaselinesConfig{
				Duration: *duration, Warmup: *warmup,
			})
			if err != nil {
				fatal(err)
			}
			header("§1.2 — read-only scans under disjoint updates: LSA-RT vs baselines")
			emit(res.Table, *csv)
		case "bench":
			results, err := runBench(selectedEngines(*engines), opt, *workers, *duration, *warmup)
			if err != nil {
				fatal(err)
			}
			publishResults(results)
			host := harness.CurrentHost()
			header(fmt.Sprintf("Cross-engine workload matrix (one harness, every registered backend; host: %d CPUs, GOMAXPROCS %d)",
				host.NumCPU, host.GOMAXPROCS))
			emit(benchTable(results), *csv)
			if *jsonPath != "" {
				if err := writeJSON(*jsonPath, results); err != nil {
					fatal(err)
				}
			}
		case "sweep":
			counts := th
			if len(counts) == 0 {
				counts = harness.DefaultWorkerCounts(runtime.GOMAXPROCS(0))
			}
			results, err := harness.SweepAcross(selectedEngines(*engines), benchWorkloads, counts,
				opt, harness.Options{Duration: *duration, Warmup: *warmup})
			if err != nil {
				fatal(err)
			}
			publishResults(results)
			host := harness.CurrentHost()
			header(fmt.Sprintf("Scaling curves — bench matrix at worker counts %v (host: %d CPUs, GOMAXPROCS %d)",
				counts, host.NumCPU, host.GOMAXPROCS))
			emit(sweepTable(results), *csv)
			if *jsonPath != "" {
				if err := writeJSON(*jsonPath, results); err != nil {
					fatal(err)
				}
			}
		default:
			fatal(fmt.Errorf("unknown experiment %q", name))
		}
	}

	if *experiment == "all" {
		for _, name := range []string{"fig1", "fig2", "fig2word", "fig2sim", "tl2opt", "errors", "baselines", "bench"} {
			run(name)
		}
		return
	}
	run(*experiment)
}

// benchWorkloads are the scenarios of the cross-engine matrix. Fresh values
// per engine: workloads hold engine-bound state after Init.
func benchWorkloads() []harness.Workload {
	return []harness.Workload{
		&workload.Bank{Accounts: 64, Seed: 1},
		&workload.IntSet{KeyRange: 128, Seed: 1},
		&workload.HashSet{Buckets: 64, Seed: 1},
		&workload.SkipList{KeyRange: 512, Seed: 1},
		&workload.SlotQueue{Groups: 8, SlotsPerGroup: 16, Seed: 1},
		&workload.Disjoint{Accesses: 10},
	}
}

func selectedEngines(spec string) []string {
	if spec == "" || spec == "all" {
		// The default matrix is every registered engine, durable wrappers
		// included: the []int bucket codec makes the hash set runnable on
		// them, and the journaling tax belongs in the headline table.
		// Workloads whose payloads still have no codec (the linked-list and
		// skip-list node graphs) are skipped per-engine in runBench, so the
		// durable group has a smaller workload set than the in-memory one —
		// benchcheck's uniformity gate compares within durability groups.
		var names []string
		for _, info := range engine.Infos() {
			names = append(names, info.Name)
		}
		return names
	}
	parts := strings.Split(spec, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func runBench(engines []string, opt engine.Options, workers int, duration, warmup time.Duration) ([]harness.Result, error) {
	if opt.Nodes == 0 {
		opt.Nodes = workers // the flag's 0 default means "match the worker count"
	}
	hopt := harness.Options{Workers: workers, Duration: duration, Warmup: warmup}
	var results []harness.Result
	run := 0
	for _, name := range engines {
		for _, w := range benchWorkloads() {
			wopt := opt
			if wopt.WALDir != "" {
				// A bench run measures a fresh store, never recovery: give
				// each engine × workload pair its own log directory so one
				// workload's WAL is not replayed into the next one's engine.
				wopt.WALDir = filepath.Join(opt.WALDir, fmt.Sprintf("bench-%03d", run))
			}
			run++
			eng, err := engine.New(name, wopt)
			if err != nil {
				return nil, err
			}
			r, err := harness.Run(eng, w, hopt)
			if errors.Is(err, durable.ErrUnsupportedPayload) {
				// Durable wrappers reject payloads without a codec at Write
				// time: the linked-list and skip-list workloads store node
				// structs holding cell handles, which no codec can rebind.
				// Skip those scenarios (loudly) rather than fail the run —
				// benchcheck's uniformity gate compares workload sets within
				// each durability group, so the durable engines just need to
				// skip consistently among themselves.
				fmt.Fprintf(os.Stderr, "lsabench: skipping %s on %s: %v\n", w.Name(), name, err)
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("harness: %s on %s: %w", w.Name(), name, err)
			}
			results = append(results, r)
		}
	}
	return results, nil
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "-"
}

func benchTable(results []harness.Result) *stats.Table {
	t := stats.NewTable("engine", "workload", "workers", "tx/s", "p50", "p99", "p999", "aborts/attempt", "abort mix", "allocs/commit", "B/commit", "boxed%", "batch", "esc%", "fsync")
	for _, r := range results {
		// batch = mean commits per combining batch (flat-combining engines);
		// esc% = share of commits that ran escalated (adaptive engines);
		// fsync = the durable wrappers' sync policy. "-" where the engine
		// has no such protocol.
		fsync := "-"
		if r.Wal != nil {
			fsync = r.Wal.FsyncPolicy
		}
		batch := "-"
		if r.Stats.CommitBatches > 0 {
			batch = fmt.Sprintf("%.2f", float64(r.Stats.BatchedCommits)/float64(r.Stats.CommitBatches))
		}
		esc := "-"
		if r.Stats.EscalatedCommits > 0 && r.Stats.Commits > 0 {
			esc = fmt.Sprintf("%.1f", 100*float64(r.Stats.EscalatedCommits)/float64(r.Stats.Commits))
		}
		p50, p99, p999 := "-", "-", "-"
		if r.Latency != nil {
			p50 = time.Duration(r.Latency.P50).String()
			p99 = time.Duration(r.Latency.P99).String()
			p999 = time.Duration(r.Latency.P999).String()
		}
		t.AddRowf(r.Engine, r.Workload, r.Workers,
			fmt.Sprintf("%.0f", r.Throughput),
			p50, p99, p999,
			fmt.Sprintf("%.4f", r.Stats.AbortRate()),
			r.Stats.AbortMix(),
			fmt.Sprintf("%.1f", r.AllocsPerCommit),
			fmt.Sprintf("%.0f", r.BytesPerCommit),
			fmt.Sprintf("%.1f", 100*r.Stats.BoxedShare()),
			batch, esc, fsync)
	}
	return t
}

// sweepTable renders scaling curves: one row per worker count of each
// engine × workload pair.
func sweepTable(results []harness.Result) *stats.Table {
	t := stats.NewTable("engine", "workload", "workers", "tx/s", "aborts/attempt", "p50", "p99", "p999")
	for _, r := range results {
		for _, p := range r.Scaling {
			t.AddRowf(r.Engine, r.Workload, p.Workers,
				fmt.Sprintf("%.0f", p.Throughput),
				fmt.Sprintf("%.4f", p.AbortRate),
				time.Duration(p.P50).String(),
				time.Duration(p.P99).String(),
				time.Duration(p.P999).String())
		}
	}
	return t
}

// latestResults backs the expvar "bench" variable: the most recent bench or
// sweep result set, readable at /debug/vars while -http is serving.
var latestResults atomic.Pointer[[]harness.Result]

func publishResults(results []harness.Result) {
	latestResults.Store(&results)
	diag.Publish("bench", func() any {
		if p := latestResults.Load(); p != nil {
			return *p
		}
		return nil
	})
}

func writeJSON(path string, results []harness.Result) error {
	host := harness.CurrentHost()
	data, err := json.MarshalIndent(harness.Snapshot{Host: &host, Results: results}, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func header(title string) {
	fmt.Printf("\n== %s ==\n\n", title)
}

func emit(t *stats.Table, csv bool) {
	if csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Print(t.String())
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("lsabench: bad integer list %q: %w", s, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsabench:", err)
	os.Exit(1)
}
