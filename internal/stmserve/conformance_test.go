// Service-level conformance suite: every registered engine, behind both
// connection→Thread mappings, must preserve the transactional invariants
// through stmserve's in-memory Service — the bank's conserved total under
// concurrent transfers with snapshot audits, and consistency of batch
// reads against paired batch writes. No sockets anywhere; run with -race.
// Like the engine-level suite, this is the compatibility gate: register a
// backend and it is covered with no further wiring.
package stmserve_test

import (
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/stmserve"
)

const confWorkers = 4

func confIters(t *testing.T, n int) int {
	t.Helper()
	if testing.Short() {
		return n / 4
	}
	return n
}

// forEachEngineAndMode runs fn once per (backend, conn-mapping mode) pair
// over a fresh Service.
func forEachEngineAndMode(t *testing.T, keys int, initial int64, fn func(t *testing.T, svc *stmserve.Service)) {
	for _, name := range engine.Names() {
		t.Run(name, func(t *testing.T) {
			for _, mode := range []string{stmserve.ModeThread, stmserve.ModePool} {
				t.Run(mode, func(t *testing.T) {
					eng := engine.MustNew(name, engine.Options{Nodes: confWorkers})
					svc, err := stmserve.New(eng, stmserve.Config{
						Keys: keys, Initial: initial,
						Mode: mode, PoolWorkers: confWorkers,
					})
					if err != nil {
						t.Fatal(err)
					}
					defer svc.Close()
					fn(t, svc)
				})
			}
		})
	}
}

// TestConformanceBank drives concurrent transfers through sessions with
// interleaved snapshot audits: every snapshot, and the final one, must sum
// to Keys×Initial.
func TestConformanceBank(t *testing.T) {
	const keys, initial = 24, 100
	forEachEngineAndMode(t, keys, initial, func(t *testing.T, svc *stmserve.Service) {
		allKeys := make([]int, keys)
		for i := range allKeys {
			allKeys[i] = i
		}
		audit := func(resp *stmserve.Response, when string) {
			var sum int64
			for _, v := range resp.Vals {
				sum += v
			}
			if sum != keys*initial {
				t.Errorf("%s: snapshot sums to %d, want %d", when, sum, keys*initial)
			}
		}
		var wg sync.WaitGroup
		for id := 0; id < confWorkers; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				sess := svc.Session()
				defer sess.Close()
				var resp stmserve.Response
				for i := 0; i < confIters(t, 150); i++ {
					from := (id*31 + i) % keys
					to := (from + 1 + i%(keys-1)) % keys
					req := stmserve.Request{Op: stmserve.OpTransfer, Key: from, Key2: to, Val: int64(i % 7)}
					if err := sess.Exec(&req, &resp); err != nil {
						t.Errorf("worker %d transfer: %v", id, err)
						return
					}
					if i%10 == 0 {
						req = stmserve.Request{Op: stmserve.OpSnapshot, Keys: allKeys}
						if err := sess.Exec(&req, &resp); err != nil {
							t.Errorf("worker %d audit: %v", id, err)
							return
						}
						audit(&resp, "concurrent audit")
					}
				}
			}(id)
		}
		wg.Wait()
		sess := svc.Session()
		defer sess.Close()
		var resp stmserve.Response
		if err := sess.Exec(&stmserve.Request{Op: stmserve.OpSnapshot, Keys: allKeys}, &resp); err != nil {
			t.Fatal(err)
		}
		audit(&resp, "final audit")
		if st := svc.Stats(); st.EngineStats.Commits == 0 {
			t.Errorf("engine counted no commits: %+v", st.EngineStats)
		}
	})
}

// TestConformanceBatchSnapshot pairs batch writers with snapshot checkers:
// writers atomically store {n, −n} into a fixed pair via batch writes, so
// any snapshot or batch read of the pair must sum to zero — a torn read
// fails immediately.
func TestConformanceBatchSnapshot(t *testing.T) {
	const keys = 8
	forEachEngineAndMode(t, keys, 1, func(t *testing.T, svc *stmserve.Service) {
		pair := []int{2, 5}
		// Balance the pair before any checker runs (cells start at the
		// configured Initial, which does not sum to zero).
		seed := svc.Session()
		var seedResp stmserve.Response
		if err := seed.Exec(&stmserve.Request{Op: stmserve.OpBatchWrite, Keys: pair, Vals: []int64{7, -7}}, &seedResp); err != nil {
			t.Fatal(err)
		}
		seed.Close()
		var wg sync.WaitGroup
		// Two writers hammer the pair with balanced batch writes.
		for id := 0; id < 2; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				sess := svc.Session()
				defer sess.Close()
				var resp stmserve.Response
				for i := 0; i < confIters(t, 150); i++ {
					n := int64((id+1)*1000 + i)
					req := stmserve.Request{Op: stmserve.OpBatchWrite, Keys: pair, Vals: []int64{n, -n}}
					if err := sess.Exec(&req, &resp); err != nil {
						t.Errorf("writer %d: %v", id, err)
						return
					}
				}
			}(id)
		}
		// Two checkers read the pair, one through snapshots (read-only
		// transactions), one through batch reads (update-capable).
		for id := 0; id < 2; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				op := stmserve.OpSnapshot
				if id == 1 {
					op = stmserve.OpBatchRead
				}
				sess := svc.Session()
				defer sess.Close()
				var resp stmserve.Response
				for i := 0; i < confIters(t, 60); i++ {
					req := stmserve.Request{Op: op, Keys: pair}
					if err := sess.Exec(&req, &resp); err != nil {
						t.Errorf("checker %d: %v", id, err)
						return
					}
					if sum := resp.Vals[0] + resp.Vals[1]; sum != 0 {
						t.Errorf("checker %d (%v): torn pair %v", id, op, resp.Vals)
						return
					}
				}
			}(id)
		}
		wg.Wait()
	})
}
