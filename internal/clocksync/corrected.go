package clocksync

import (
	"fmt"

	"repro/internal/hwclock"
)

// Corrected is a software-synchronized view of a clock device: every node
// read is adjusted by the offset estimated by Measure, leaving a residual
// deviation bounded by the measurement error. It implements
// timebase.NodeClock, so it can directly back an externally synchronized
// STM time base — the full §3.2 pipeline: measure, correct, advertise the
// bound, let the STM mask the rest.
//
// The corrected clocks agree with the *reference node's* clock (node 0) up
// to Bound(), not with true device time: external synchronization fixes
// mutual disagreement, and any offset the reference itself has from real
// time shifts all timestamps equally, which the STM's purely relative
// comparisons never observe.
type Corrected struct {
	dev     *hwclock.Device
	offsets []int64
	bound   int64
}

// NewCorrected builds the corrected view from a measurement's per-node
// estimates. Nodes missing from est (including the reference node 0) get a
// zero correction. The residual bound is the largest estimation error plus
// one tick of correction granularity.
func NewCorrected(dev *hwclock.Device, est []NodeEstimate) (*Corrected, error) {
	if dev == nil {
		return nil, fmt.Errorf("clocksync: device is required")
	}
	c := &Corrected{dev: dev, offsets: make([]int64, dev.Nodes()), bound: 1}
	for _, e := range est {
		if e.Node < 0 || e.Node >= dev.Nodes() {
			return nil, fmt.Errorf("clocksync: estimate for unknown node %d", e.Node)
		}
		c.offsets[e.Node] = e.Offset
		if e.Error+1 > c.bound {
			c.bound = e.Error + 1
		}
	}
	return c, nil
}

// NodeRead implements timebase.NodeClock: the raw register value minus the
// estimated offset. Strict per-node monotonicity is inherited from the
// device (the correction is constant).
func (c *Corrected) NodeRead(node int) int64 {
	return c.dev.NodeRead(node) - c.offsets[node]
}

// Nodes implements timebase.NodeClock.
func (c *Corrected) Nodes() int { return c.dev.Nodes() }

// Bound is the residual deviation bound in ticks after correction. Pass it
// to timebase.NewExtSyncClockFrom.
func (c *Corrected) Bound() int64 { return c.bound }

// Offset returns the correction applied to node, for diagnostics.
func (c *Corrected) Offset(node int) int64 { return c.offsets[node] }
